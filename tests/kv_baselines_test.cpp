// Keyed log-baseline runtime (kv::KeyedLogStore): lane/executor geometry,
// cross-replica per-key counts through leader forwarding, envelope fuzz
// robustness (truncated / bit-flipped / oversized payloads), and the
// seed-sweep nemesis: per-key linearizability of all three systems under
// message loss, duplication, a transient partition and a replica crash.
#include "kv/keyed_log_store.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench/runner.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/ops.h"
#include "kv/shard.h"
#include "kv/sharded_store.h"
#include "lattice/gcounter.h"
#include "paxos/multipaxos.h"
#include "raft/raft.h"
#include "rsm/client_msg.h"
#include "sim/simulator.h"
#include "verify/history.h"
#include "verify/kv_recording_client.h"
#include "verify/linearizability.h"

namespace lsr::kv {
namespace {

using PaxosStore = KeyedLogStore<paxos::MultiPaxosReplica>;
using RaftStore = KeyedLogStore<raft::RaftReplica>;
using CrdtStore = ShardedStore<lattice::GCounter>;

std::vector<std::string> make_keys(std::size_t n, const std::string& prefix) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(prefix + std::to_string(i));
  return keys;
}

// Runs the simulation in bounded slices until `done` reports true; the event
// queue of the keyed baselines never drains (per-key leaders re-arm
// heartbeat and election timers forever), so run_to_completion would spin to
// the safety limit.
template <typename DonePredicate>
bool run_until_done(sim::Simulator& sim, TimeNs limit, DonePredicate done) {
  while (sim.now() < limit) {
    if (done()) return true;
    sim.run_for(20 * kMillisecond);
  }
  return done();
}

TEST(KeyedLogStore, LaneGeometryIsOneLanePerShard) {
  sim::Simulator sim(2);
  const std::vector<NodeId> replicas{0};
  sim.add_node([&replicas](net::Context& ctx) {
    return std::make_unique<PaxosStore>(ctx, replicas, paxos::PaxosConfig{},
                                        ShardOptions{8});
  });
  auto& store = sim.endpoint_as<PaxosStore>(0);
  // The log baselines model a single peer FSM per key, so a shard is one
  // lane and one executor group (the CRDT store has a pair per shard).
  EXPECT_EQ(store.lane_count(), 8);
  EXPECT_EQ(store.executor_count(), 8);
  for (int lane = 0; lane < store.lane_count(); ++lane)
    EXPECT_EQ(store.executor_of(lane), lane);
  // Client and protocol messages of one key land on the same shard lane.
  const std::string key = "geometry-key";
  Encoder update;
  rsm::ClientUpdate{make_request_id(9, 0), 0, core::encode_increment_args(1)}
      .encode(update);
  EXPECT_EQ(store.lane_of(make_envelope(key, update.bytes())),
            static_cast<int>(store.shard_of(key)));
  Encoder protocol_msg;
  protocol_msg.put_u8(16);  // first protocol-internal tag
  EXPECT_EQ(store.lane_of(make_envelope(key, protocol_msg.bytes())),
            static_cast<int>(store.shard_of(key)));
  // Malformed input routes to lane 0 and is dropped during handling.
  EXPECT_EQ(store.lane_of(Bytes{0x00, 0x01}), 0);
}

// Scripted client: per-key increments submitted through different replicas,
// then one read per key through yet another replica — the leader-forwarding
// path must deliver the exact per-key count regardless of entry replica.
class ScriptClient final : public net::Endpoint {
 public:
  struct Step {
    std::string key;
    bool is_read = false;
    NodeId replica = 0;
  };

  ScriptClient(net::Context& ctx, std::vector<Step> steps)
      : ctx_(ctx), steps_(std::move(steps)) {}

  void on_start() override { submit(); }

  void on_message(NodeId, ByteSpan data) override {
    EnvelopeView env;
    if (!peek_envelope(data, env)) return;
    Decoder dec(env.inner, env.inner_size);
    try {
      const auto tag = static_cast<rsm::ClientTag>(dec.get_u8());
      if (tag == rsm::ClientTag::kQueryDone) {
        const auto done = rsm::QueryDone::decode(dec);
        Decoder result(done.result);
        reads[std::string(env.key)] = result.get_u64();
      } else if (tag != rsm::ClientTag::kUpdateDone) {
        return;
      }
    } catch (const WireError&) {
      return;
    }
    ++index_;
    submit();
  }

  bool done() const { return index_ >= steps_.size(); }

  std::map<std::string, std::uint64_t> reads;

 private:
  void submit() {
    if (done()) return;
    const Step& step = steps_[index_];
    Encoder inner;
    if (step.is_read) {
      rsm::ClientQuery{make_request_id(ctx_.self(), seq_++), 0, {}}.encode(
          inner);
    } else {
      rsm::ClientUpdate{make_request_id(ctx_.self(), seq_++), 0,
                        core::encode_increment_args(1)}
          .encode(inner);
    }
    ctx_.send(step.replica, make_envelope(step.key, inner.bytes()));
  }

  net::Context& ctx_;
  std::vector<Step> steps_;
  std::size_t index_ = 0;
  std::uint64_t seq_ = 0;
};

template <typename Store>
void counts_correct_across_replicas() {
  sim::Simulator sim(5);
  const std::vector<NodeId> replicas{0, 1, 2};
  for (int i = 0; i < 3; ++i) {
    sim.add_node([&replicas](net::Context& ctx) {
      return std::make_unique<Store>(ctx, replicas, typename Store::Config{},
                                     ShardOptions{4});
    });
  }
  const auto keys = make_keys(5, "url-");
  std::vector<ScriptClient::Step> script;
  for (std::size_t k = 0; k < keys.size(); ++k)
    for (std::size_t v = 0; v <= k; ++v)  // key i gets i+1 increments
      script.push_back({keys[k], false, static_cast<NodeId>(v % 3)});
  for (std::size_t k = 0; k < keys.size(); ++k)
    script.push_back({keys[k], true, static_cast<NodeId>((k + 1) % 3)});
  const NodeId client = sim.add_node([&script](net::Context& ctx) {
    return std::make_unique<ScriptClient>(ctx, script);
  });
  ASSERT_TRUE(run_until_done(sim, 20 * kSecond, [&] {
    return sim.endpoint_as<ScriptClient>(client).done();
  }));
  auto& reads = sim.endpoint_as<ScriptClient>(client).reads;
  for (std::size_t k = 0; k < keys.size(); ++k) {
    ASSERT_TRUE(reads.count(keys[k])) << keys[k];
    EXPECT_EQ(reads[keys[k]], k + 1) << keys[k];
  }
  // Keys were created on demand on every replica the protocol touched.
  EXPECT_EQ(sim.endpoint_as<Store>(0).key_count(), keys.size());
  EXPECT_GT(sim.endpoint_as<Store>(0).leader_count() +
                sim.endpoint_as<Store>(1).leader_count() +
                sim.endpoint_as<Store>(2).leader_count(),
            0u);
}

TEST(KeyedLogStore, PaxosCountsCorrectAcrossReplicas) {
  counts_correct_across_replicas<PaxosStore>();
}

TEST(KeyedLogStore, RaftCountsCorrectAcrossReplicas) {
  counts_correct_across_replicas<RaftStore>();
}

// Envelope fuzz mirrored from shard_test: truncated, bit-flipped, oversized
// and pure-garbage payloads must never crash the keyed baseline store, and
// the envelope hash check must keep corrupted keys from materializing
// (per-key instances are expensive here: each one is a full log replica).
template <typename Store>
void fuzz_garbage_through_store(std::uint64_t seed) {
  const LogLevel saved_level = log_level();
  set_log_level(LogLevel::kError);
  class Sink final : public net::Endpoint {
   public:
    void on_message(NodeId, ByteSpan) override {}
  };
  sim::Simulator sim(seed);
  const std::vector<NodeId> replicas{0};
  sim.add_node([&replicas](net::Context& ctx) {
    return std::make_unique<Store>(ctx, replicas, typename Store::Config{},
                                   ShardOptions{4});
  });
  sim.add_node([](net::Context&) { return std::make_unique<Sink>(); });
  auto& store = sim.endpoint_as<Store>(0);
  Rng rng(seed);
  Encoder update;
  rsm::ClientUpdate{make_request_id(5, 1), 0, core::encode_increment_args(1)}
      .encode(update);
  for (int round = 0; round < 500; ++round) {
    const std::string key = "fuzz" + std::to_string(rng.next_below(64));
    Bytes envelope = make_envelope(key, update.bytes());
    const int mode = static_cast<int>(rng.next_below(4));
    if (mode == 0) {
      envelope.resize(rng.next_below(envelope.size() + 1));  // truncate
    } else if (mode == 1) {
      const std::size_t at = rng.next_below(envelope.size());
      envelope[at] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    } else if (mode == 2) {
      // Oversized: a huge random tail (and sometimes a huge claimed key
      // length) after a valid-looking prefix.
      envelope.resize(8 + rng.next_below(64 * 1024));
      for (std::size_t i = 1; i < envelope.size(); ++i)
        envelope[i] = static_cast<std::uint8_t>(rng.next_u64());
      envelope[0] = kEnvelopeTag;
    } else {
      envelope.assign(rng.next_below(64), 0);
      for (auto& byte : envelope)
        byte = static_cast<std::uint8_t>(rng.next_u64());
    }
    const int lane = store.lane_of(envelope);
    EXPECT_GE(lane, 0);
    EXPECT_LT(lane, store.lane_count());
    store.on_message(1, envelope);
  }
  // Only genuine fuzz-prefixed keys may materialize (a flip inside the inner
  // payload still carries a valid header); corrupted headers never do.
  EXPECT_LE(store.key_count(), 64u);
  // Whatever instances came alive must not crash the simulation.
  sim.run_for(50 * kMillisecond);
  set_log_level(saved_level);
}

TEST(KeyedLogStore, FuzzGarbagePaxos) {
  fuzz_garbage_through_store<PaxosStore>(11);
}

TEST(KeyedLogStore, FuzzGarbageRaft) { fuzz_garbage_through_store<RaftStore>(12); }

// ---- seed-sweep nemesis ------------------------------------------------
//
// All three systems on the multi-key workload across >= 10 seeds, each run
// under replica-link loss + duplication, a transient partition of replica 2
// and a mid-run replica crash with recovery. Every key's history must stay
// linearizable and every client session must complete.
//
// Asymmetry by design: the log baselines replicate per-client session
// tables, so their clients run with retransmission + failover and any
// replica (including a leader) may crash. The CRDT store has no sessions —
// a retried increment could double-apply — so its clients keep retries off
// and talk only to the replicas the nemesis never crashes (the same regime
// as the PR 1 crash test).

using NemesisParam = std::tuple<bench::System, std::uint32_t>;

class KvBaselineNemesisP : public ::testing::TestWithParam<NemesisParam> {};

INSTANTIATE_TEST_SUITE_P(
    SystemsAndShards, KvBaselineNemesisP,
    ::testing::Combine(::testing::Values(bench::System::kCrdt,
                                         bench::System::kMultiPaxos,
                                         bench::System::kRaft),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
      const char* system = std::get<0>(info.param) == bench::System::kCrdt
                               ? "Crdt"
                               : std::get<0>(info.param) ==
                                         bench::System::kMultiPaxos
                                     ? "MultiPaxos"
                                     : "Raft";
      return std::string(system) + "Shards" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(KvBaselineNemesisP, PerKeyLinearizableUnderLossPartitionAndCrash) {
  const auto [system, shards] = GetParam();
  const bool is_crdt = system == bench::System::kCrdt;
  constexpr int kSeeds = 10;
  constexpr std::uint64_t kMaxOps = 40;
  const auto keys = make_keys(8, "nem-");

  for (int seed = 0; seed < kSeeds; ++seed) {
    sim::NetworkConfig net;
    net.loss_probability = 0.03;
    net.duplicate_probability = 0.02;
    net.lossy_node_limit = 3;  // replica links only; client links stay fair
    sim::Simulator sim(5000 + 100 * seed + shards, net);
    const std::vector<NodeId> replicas{0, 1, 2};
    for (int i = 0; i < 3; ++i) {
      switch (system) {
        case bench::System::kCrdt:
          sim.add_node([&](net::Context& ctx) {
            return std::make_unique<CrdtStore>(
                ctx, replicas, core::ProtocolConfig{}, core::gcounter_ops(),
                lattice::GCounter{}, ShardOptions{shards});
          });
          break;
        case bench::System::kMultiPaxos:
          sim.add_node([&](net::Context& ctx) {
            // Demotion stays on under loss: a dropped park farewell or a
            // wake racing a retransmitted command must never cost safety.
            paxos::PaxosConfig config;
            config.idle_demote_intervals = 2;
            return std::make_unique<PaxosStore>(ctx, replicas, config,
                                                ShardOptions{shards});
          });
          break;
        default:
          sim.add_node([&](net::Context& ctx) {
            raft::RaftConfig config;
            config.rng_seed = 900 + 31 * static_cast<std::uint64_t>(seed);
            config.idle_demote_intervals = 2;
            return std::make_unique<RaftStore>(ctx, replicas, config,
                                               ShardOptions{shards});
          });
          break;
      }
    }

    verify::KeyedHistory history;
    std::vector<NodeId> clients;
    for (std::size_t c = 0; c < 4; ++c) {
      // CRDT clients avoid the crashing replica (2); baseline clients spread
      // over all three and rely on retry + failover.
      const NodeId target =
          is_crdt ? static_cast<NodeId>(c % 2) : static_cast<NodeId>(c % 3);
      clients.push_back(sim.add_node([&, target, c](net::Context& ctx) {
        auto client = std::make_unique<verify::KvRecordingClient>(
            ctx, target, &keys, /*read_ratio=*/0.5,
            /*seed=*/3000 + 10 * static_cast<std::uint64_t>(seed) + c,
            &history, kMaxOps);
        if (!is_crdt)
          client->enable_retry(50 * kMillisecond, /*failover_after=*/3,
                               /*replica_count=*/3);
        return client;
      }));
    }

    // Nemesis schedule: partition replica 2 away, heal, then crash a replica
    // (a likely per-key leader for the baselines) and recover it.
    const NodeId crash_node = is_crdt ? 2 : 0;
    sim.call_at(30 * kMillisecond, [&] {
      sim.set_partitioned(0, 2, true);
      sim.set_partitioned(1, 2, true);
    });
    sim.call_at(90 * kMillisecond, [&] {
      sim.set_partitioned(0, 2, false);
      sim.set_partitioned(1, 2, false);
    });
    sim.call_at(150 * kMillisecond,
                [&, crash_node] { sim.set_down(crash_node, true); });
    sim.call_at(400 * kMillisecond,
                [&, crash_node] { sim.set_down(crash_node, false); });

    const bool all_done = run_until_done(sim, 30 * kSecond, [&] {
      for (const NodeId client : clients)
        if (sim.endpoint_as<verify::KvRecordingClient>(client).completed() <
            kMaxOps)
          return false;
      return true;
    });
    for (const NodeId client : clients)
      sim.endpoint_as<verify::KvRecordingClient>(client).flush_pending();

    EXPECT_TRUE(all_done) << "seed " << seed << ": a client session wedged";
    for (const auto& [key, key_history] : history.histories()) {
      const auto result = verify::check_counter_linearizable(key_history);
      EXPECT_TRUE(result.linearizable)
          << "seed " << seed << " key " << key << ": " << result.explanation;
    }
  }
}

// ---- demotion nemesis --------------------------------------------------
//
// Idle-key lease demotion under faults, for both log baselines: park the
// whole keyspace, re-wake it across a partition, re-park after the heal,
// then SIGKILL the bootstrap leader WHILE its keys are parked (no heartbeats
// are flowing, so nothing detects the crash until a client speaks) and
// demand that the next commands re-elect per key and every history stays
// linearizable. Clients pause/resume around each fault so the keyspace
// genuinely goes idle — demotion only triggers on idle keys.
//
// The network stays lossless here on purpose: a lost park farewell leaves a
// follower un-parked and the full-park predicates below would flake. Loss
// plus demotion is covered by the seed-sweep nemesis above (which runs with
// idle demotion enabled); this test isolates the park/wake/crash
// interleavings.

template <typename Store>
void demotion_nemesis_sweep(
    const std::function<typename Store::Config(int seed)>& config_for) {
  constexpr int kSeeds = 10;
  constexpr std::uint64_t kMaxOps = 30;
  const auto keys = make_keys(6, "dem-");

  for (int seed = 0; seed < kSeeds; ++seed) {
    sim::Simulator sim(7000 + 100 * seed);
    const std::vector<NodeId> replicas{0, 1, 2};
    for (int i = 0; i < 3; ++i) {
      sim.add_node([&](net::Context& ctx) {
        return std::make_unique<Store>(ctx, replicas, config_for(seed),
                                       ShardOptions{4});
      });
    }

    verify::KeyedHistory history;
    std::vector<NodeId> clients;
    for (std::size_t c = 0; c < 3; ++c) {
      clients.push_back(sim.add_node([&, c](net::Context& ctx) {
        auto client = std::make_unique<verify::KvRecordingClient>(
            ctx, static_cast<NodeId>(c % 3), &keys, /*read_ratio=*/0.4,
            /*seed=*/4000 + 10 * static_cast<std::uint64_t>(seed) + c,
            &history, kMaxOps);
        client->enable_retry(50 * kMillisecond, /*failover_after=*/3,
                             /*replica_count=*/3);
        return client;
      }));
    }
    auto client_at = [&](std::size_t c) -> verify::KvRecordingClient& {
      return sim.endpoint_as<verify::KvRecordingClient>(clients[c]);
    };
    auto all_completed = [&](std::uint64_t target) {
      return [&, target] {
        for (std::size_t c = 0; c < clients.size(); ++c)
          if (client_at(c).completed() < target) return false;
        return true;
      };
    };
    auto pause_all = [&](bool paused) {
      for (std::size_t c = 0; c < clients.size(); ++c)
        client_at(c).set_paused(paused);
    };
    // Full park: every hosted key of every listed replica is demoted and no
    // client operation is still in flight.
    auto fully_parked = [&](std::vector<NodeId> stores) {
      return [&, stores = std::move(stores)] {
        for (std::size_t c = 0; c < clients.size(); ++c)
          if (!client_at(c).idle()) return false;
        for (const NodeId node : stores) {
          auto& store = sim.endpoint_as<Store>(node);
          if (store.key_count() == 0 ||
              store.parked_key_count() < store.key_count())
            return false;
        }
        return true;
      };
    };

    // Phase A: populate the keyspace, then go idle and wait for every key on
    // every replica to demote.
    ASSERT_TRUE(run_until_done(sim, 30 * kSecond, all_completed(10)))
        << "seed " << seed << ": phase A wedged";
    pause_all(true);
    ASSERT_TRUE(run_until_done(sim, 30 * kSecond, fully_parked({0, 1, 2})))
        << "seed " << seed << ": keyspace never fully parked";
    ASSERT_GT(sim.endpoint_as<Store>(0).parked_key_count(), 0u);

    // Phase B: wake the parked keyspace across a partition (replica 2 cut
    // off from its peers; quorum 0+1 still commits), then heal and let
    // everything park again — including replica 2, which must first catch
    // up on whatever it missed. The heal happens while simulated time is
    // stopped, so no park farewell can be lost to the partition.
    sim.set_partitioned(0, 2, true);
    sim.set_partitioned(1, 2, true);
    pause_all(false);
    ASSERT_TRUE(run_until_done(sim, 30 * kSecond, all_completed(20)))
        << "seed " << seed << ": phase B wedged under partition";
    pause_all(true);
    sim.set_partitioned(0, 2, false);
    sim.set_partitioned(1, 2, false);
    ASSERT_TRUE(run_until_done(sim, 30 * kSecond, fully_parked({0, 1, 2})))
        << "seed " << seed << ": keyspace never re-parked after heal";

    // Phase C: kill the bootstrap replica while the whole keyspace is
    // parked. Nothing heartbeats a parked key, so the crash is silent —
    // nothing may wake until a client speaks.
    sim.set_down(0, true);
    const std::uint64_t msgs_during_silence = sim.messages_sent();
    sim.run_for(100 * kMillisecond);
    EXPECT_EQ(sim.messages_sent(), msgs_during_silence)
        << "seed " << seed << ": parked keyspace was not silent";
    pause_all(false);  // clients fail over, keys wake and re-elect
    const bool all_done =
        run_until_done(sim, 60 * kSecond, all_completed(kMaxOps));
    sim.set_down(0, false);
    for (std::size_t c = 0; c < clients.size(); ++c)
      client_at(c).flush_pending();

    EXPECT_TRUE(all_done)
        << "seed " << seed << ": a session wedged after the parked crash";
    for (const auto& [key, key_history] : history.histories()) {
      const auto result = verify::check_counter_linearizable(key_history);
      EXPECT_TRUE(result.linearizable)
          << "seed " << seed << " key " << key << ": " << result.explanation;
    }
  }
}

TEST(KvDemotionNemesis, MultiPaxosParkedKeysReElectAndStayLinearizable) {
  demotion_nemesis_sweep<PaxosStore>([](int) {
    paxos::PaxosConfig config;
    config.heartbeat_interval = 5 * kMillisecond;
    config.lease_duration = 25 * kMillisecond;
    config.idle_demote_intervals = 2;
    return config;
  });
}

TEST(KvDemotionNemesis, RaftParkedKeysReElectAndStayLinearizable) {
  demotion_nemesis_sweep<RaftStore>([](int seed) {
    raft::RaftConfig config;
    config.idle_demote_intervals = 2;
    config.rng_seed = 1300 + 17 * static_cast<std::uint64_t>(seed);
    return config;
  });
}

// ---- read-lease revocation across a partition --------------------------
//
// The CRDT store's worst lease case: a reader builds leases at replica 0,
// then 0 is partitioned away mid-lease — recalls can never reach it, so
// revocation must happen by TTL expiry at the granting acceptors (the
// dead-holder path) while the stranded holder independently stops serving
// at its own (earlier) validity deadline. Writers on the majority side may
// be delayed at most one TTL and every per-key history must stay
// linearizable across the expiry race.
TEST(KvLeaseNemesis, RevokeMidPartitionExpiresAndStaysLinearizable) {
  constexpr std::uint64_t kMaxOps = 30;
  const auto keys = make_keys(4, "lease-");
  sim::NetworkConfig net;
  net.loss_probability = 0.02;
  net.lossy_node_limit = 3;  // replica links only; client links stay fair
  sim::Simulator sim(8200, net);
  const std::vector<NodeId> replicas{0, 1, 2};
  core::ProtocolConfig config;
  config.read_leases = true;
  for (int i = 0; i < 3; ++i) {
    sim.add_node([&](net::Context& ctx) {
      return std::make_unique<CrdtStore>(ctx, replicas, config,
                                         core::gcounter_ops(),
                                         lattice::GCounter{}, ShardOptions{4});
    });
  }

  verify::KeyedHistory history;
  std::vector<NodeId> clients;
  // Client 0: read-heavy at replica 0 — the leaseholder-to-be. Client 1:
  // write-heavy at replica 1, the revocation pressure on the majority side —
  // held paused until the holder is stranded, so its first writes are
  // guaranteed to meet live grantor records whose recalls cannot arrive.
  const double read_ratio[2] = {0.9, 0.1};
  for (std::size_t c = 0; c < 2; ++c) {
    clients.push_back(sim.add_node([&, c](net::Context& ctx) {
      auto client = std::make_unique<verify::KvRecordingClient>(
          ctx, static_cast<NodeId>(c), &keys, read_ratio[c],
          /*seed=*/8300 + 17 * static_cast<std::uint64_t>(c), &history,
          kMaxOps);
      if (c == 1) client->set_paused(true);
      return client;
    }));
  }

  // Let replica 0 acquire leases, then strand it for longer than the TTL
  // (200 ms): every revocation in that window must travel the expiry path.
  sim.call_at(25 * kMillisecond, [&] {
    sim.set_partitioned(0, 1, true);
    sim.set_partitioned(0, 2, true);
  });
  sim.call_at(30 * kMillisecond, [&] {
    sim.endpoint_as<verify::KvRecordingClient>(clients[1]).set_paused(false);
  });
  sim.call_at(350 * kMillisecond, [&] {
    sim.set_partitioned(0, 1, false);
    sim.set_partitioned(0, 2, false);
  });

  const bool all_done = run_until_done(sim, 30 * kSecond, [&] {
    for (const NodeId client : clients)
      if (sim.endpoint_as<verify::KvRecordingClient>(client).completed() <
          kMaxOps)
        return false;
    return true;
  });
  for (const NodeId client : clients)
    sim.endpoint_as<verify::KvRecordingClient>(client).flush_pending();
  EXPECT_TRUE(all_done) << "a client wedged across the lease expiry";

  core::LeaseStats folded;
  for (const NodeId id : replicas)
    folded.add(sim.endpoint_as<CrdtStore>(id).lease_stats());
  EXPECT_GT(folded.lease_hits, 0u) << "leases never served a read";
  EXPECT_GT(folded.lease_expiries, 0u)
      << "no grantor record expired: the partition never forced the "
         "dead-holder revocation path";
  for (const auto& [key, key_history] : history.histories()) {
    const auto result = verify::check_counter_linearizable(key_history);
    EXPECT_TRUE(result.linearizable)
        << "key " << key << ": " << result.explanation;
  }
}

}  // namespace
}  // namespace lsr::kv
