// Figure 4 — "95th percentile latency with failure (w/o (top) and w/
// (bottom) batching)."
//
// 64 clients, 10 % updates, three replicas; one replica is killed midway
// through the run. Prints a per-second time series of read/update p95 —
// the paper's point is that there is *no unavailability window* (no leader
// to re-elect) and only a modest latency increase afterwards, because a
// consistent quorum now requires both survivors to agree.
#include <cstdio>
#include <iostream>

#include "bench/report.h"
#include "bench/runner.h"

namespace {

using namespace lsr;
using namespace lsr::bench;

void run_variant(const BenchArgs& args, System system, const char* title,
                 JsonReport* report, const char* section) {
  // Quick mode compresses the paper's 10-minute timeline into 12 s with the
  // failure at t=6 s; --full uses 60 s with the failure at t=30 s.
  const TimeNs duration = args.full ? 60 * kSecond : 12 * kSecond;
  const TimeNs fail_at = duration / 2;

  RunConfig config;
  config.system = system;
  config.clients = 64;
  config.read_ratio = 0.9;
  config.warmup = 0;  // the timeline itself is the result
  config.measure = duration;
  config.seed = args.seed;
  config.series_bucket = kSecond;
  config.fail_node_at = fail_at;
  config.fail_node = 2;
  // Clients of the killed replica reconnect to a survivor after timeouts
  // (the load generator keeps all 64 clients running, as in the paper).
  config.client_retry_timeout = 100 * kMillisecond;
  const RunResult result = run_workload(config);

  std::printf("\n== %s (replica 2 killed at t=%llds) ==\n", title,
              static_cast<long long>(fail_at / kSecond));
  Table table({"t (s)", "read p95 (ms)", "update p95 (ms)", "reads", "updates"});
  const std::size_t buckets =
      std::min(result.read_series.size(), result.update_series.size());
  for (std::size_t bucket = 0; bucket < buckets; ++bucket) {
    const auto& reads = result.read_series[bucket];
    const auto& updates = result.update_series[bucket];
    if (reads.count() == 0 && updates.count() == 0) continue;
    table.add_row({std::to_string(bucket),
                   fmt_double(static_cast<double>(reads.percentile(0.95)) /
                                  kMillisecond, 2),
                   fmt_double(static_cast<double>(updates.percentile(0.95)) /
                                  kMillisecond, 2),
                   std::to_string(reads.count()),
                   std::to_string(updates.count())});
  }
  table.print(std::cout, args.csv);
  // Every JSON row names its system, so the file stays self-describing even
  // when rows from several sections are pooled downstream.
  report->add_table(section, table, {{"system", system_name(system)}});
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  std::printf("Figure 4: p95 latency across a node failure, 64 clients, "
              "10%% updates%s\n",
              args.full ? " [--full]" : "");
  JsonReport report;
  report.set_meta("bench", std::string("fig4_failure"));
  report.set_meta("seed", static_cast<double>(args.seed));
  run_variant(args, System::kCrdt, "CRDT Paxos (no batching)", &report,
              "no_batching");
  run_variant(args, System::kCrdtBatching, "CRDT Paxos (5 ms batching)",
              &report, "batching_5ms");
  if (!args.json_path.empty()) report.write_file(args.json_path);
  std::printf(
      "\nExpected shape (paper): continuous availability through the crash\n"
      "(no leader election gap); latencies rise slightly afterwards because\n"
      "a consistent quorum now needs both survivors; batching dampens it.\n");
  return 0;
}
