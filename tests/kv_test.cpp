// Key-value layer: per-key isolation, on-demand instances, linearizability
// per key, and envelope robustness — across shard counts 1, 4 and 16.
#include "kv/kv_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "core/ops.h"
#include "lattice/gcounter.h"
#include "rsm/client_msg.h"
#include "sim/simulator.h"

namespace lsr::kv {
namespace {

using lattice::GCounter;
using Store = KvStore<GCounter>;

// Scripted client: per-step (key, update|read); records read results.
class KvClient final : public net::Endpoint {
 public:
  struct Step {
    std::string key;
    bool is_read = false;
    NodeId replica = kSameReplica;  // per-step target override
  };
  static constexpr NodeId kSameReplica = ~NodeId{0};

  KvClient(net::Context& ctx, NodeId replica, std::vector<Step> steps,
           TimeNs start_delay = 0)
      : ctx_(ctx),
        replica_(replica),
        steps_(std::move(steps)),
        start_delay_(start_delay) {}

  void on_start() override {
    if (start_delay_ > 0)
      ctx_.set_timer(start_delay_, 0, [this] { submit(); });
    else
      submit();
  }

  void on_message(NodeId, ByteSpan data) override {
    EnvelopeView env;
    if (!peek_envelope(data, env)) return;
    Decoder inner_dec(env.inner, env.inner_size);
    const auto tag = static_cast<rsm::ClientTag>(inner_dec.get_u8());
    if (tag == rsm::ClientTag::kQueryDone) {
      const auto done = rsm::QueryDone::decode(inner_dec);
      Decoder result(done.result);
      reads.emplace_back(std::string(env.key), result.get_u64());
    }
    ++index_;
    submit();
  }

  std::vector<std::pair<std::string, std::uint64_t>> reads;

 private:
  void submit() {
    if (index_ >= steps_.size()) return;
    const Step& step = steps_[index_];
    Encoder inner;
    if (step.is_read) {
      rsm::ClientQuery{make_request_id(ctx_.self(), seq_++), 0, {}}.encode(
          inner);
    } else {
      rsm::ClientUpdate{make_request_id(ctx_.self(), seq_++), 0,
                        core::encode_increment_args(1)}
          .encode(inner);
    }
    const NodeId target =
        step.replica == kSameReplica ? replica_ : step.replica;
    ctx_.send(target, make_envelope(step.key, inner.bytes()));
  }

  net::Context& ctx_;
  NodeId replica_;
  std::vector<Step> steps_;
  TimeNs start_delay_ = 0;
  std::size_t index_ = 0;
  std::uint64_t seq_ = 0;
};

struct KvCluster {
  std::unique_ptr<sim::Simulator> sim;
  std::vector<NodeId> replicas{0, 1, 2};

  KvCluster(std::uint64_t seed, std::uint32_t shards) {
    sim = std::make_unique<sim::Simulator>(seed);
    for (std::size_t i = 0; i < 3; ++i) {
      sim->add_node([this, shards](net::Context& ctx) {
        return std::make_unique<Store>(ctx, replicas, core::ProtocolConfig{},
                                       core::gcounter_ops(), GCounter{},
                                       ShardOptions{shards});
      });
    }
  }

  Store& store(std::size_t i) { return sim->endpoint_as<Store>(replicas[i]); }
};

class KvStoreP : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(ShardCounts, KvStoreP, ::testing::Values(1u, 4u, 16u),
                         [](const auto& info) {
                           return "shards" + std::to_string(info.param);
                         });

TEST_P(KvStoreP, KeysAreIndependentCounters) {
  KvCluster cluster(1, GetParam());
  std::vector<KvClient::Step> steps;
  for (int i = 0; i < 5; ++i) steps.push_back({"alpha", false});
  for (int i = 0; i < 3; ++i) steps.push_back({"beta", false});
  steps.push_back({"alpha", true});
  steps.push_back({"beta", true});
  steps.push_back({"gamma", true});  // never written: reads 0
  const NodeId client = cluster.sim->add_node([&steps](net::Context& ctx) {
    return std::make_unique<KvClient>(ctx, 0, steps);
  });
  cluster.sim->run_to_completion();
  const auto& reads = cluster.sim->endpoint_as<KvClient>(client).reads;
  ASSERT_EQ(reads.size(), 3u);
  EXPECT_EQ(reads[0], (std::pair<std::string, std::uint64_t>{"alpha", 5}));
  EXPECT_EQ(reads[1], (std::pair<std::string, std::uint64_t>{"beta", 3}));
  EXPECT_EQ(reads[2], (std::pair<std::string, std::uint64_t>{"gamma", 0}));
}

TEST_P(KvStoreP, InstancesCreatedOnDemand) {
  KvCluster cluster(2, GetParam());
  EXPECT_EQ(cluster.store(0).key_count(), 0u);
  std::vector<KvClient::Step> steps{{"x", false}, {"y", false}};
  cluster.sim->add_node([&steps](net::Context& ctx) {
    return std::make_unique<KvClient>(ctx, 0, steps);
  });
  cluster.sim->run_to_completion();
  EXPECT_EQ(cluster.store(0).key_count(), 2u);
  // Remote replicas materialized the keys through MERGE envelopes.
  EXPECT_TRUE(cluster.store(1).has_key("x"));
  EXPECT_TRUE(cluster.store(2).has_key("y"));
}

TEST_P(KvStoreP, CrossReplicaVisibilityPerKey) {
  // Updates via replica 0, then (sequentially) a read via replica 2 — same
  // key, Update Visibility must hold across replicas.
  KvCluster cluster(3, GetParam());
  std::vector<KvClient::Step> steps{{"shared", false, 0},
                                    {"shared", false, 0},
                                    {"shared", true, 2}};
  const NodeId client = cluster.sim->add_node([&](net::Context& ctx) {
    return std::make_unique<KvClient>(ctx, 0, steps);
  });
  cluster.sim->run_to_completion();
  const auto& reads = cluster.sim->endpoint_as<KvClient>(client).reads;
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].second, 2u);
}

TEST_P(KvStoreP, ManyKeysManyClients) {
  KvCluster cluster(4, GetParam());
  Rng rng(77);
  const std::vector<std::string> keys{"a", "b", "c", "d", "e", "f"};
  std::vector<NodeId> clients;
  for (std::size_t c = 0; c < 6; ++c) {
    std::vector<KvClient::Step> steps;
    for (int i = 0; i < 20; ++i)
      steps.push_back({keys[rng.next_below(keys.size())], rng.next_bool(0.4)});
    clients.push_back(cluster.sim->add_node(
        [steps, c](net::Context& ctx) {
          return std::make_unique<KvClient>(ctx, static_cast<NodeId>(c % 3),
                                            steps);
        }));
  }
  cluster.sim->run_to_completion();
  // All replicas converged per key after quiescence.
  for (const auto& key : keys) {
    if (!cluster.store(0).has_key(key)) continue;
    const auto v0 =
        cluster.store(0).replica_for(key).acceptor().state().value();
    for (std::size_t i = 1; i < 3; ++i) {
      if (!cluster.store(i).has_key(key)) continue;
      const auto vi =
          cluster.store(i).replica_for(key).acceptor().state().value();
      EXPECT_LE(vi > v0 ? vi - v0 : v0 - vi, 0u) << "key " << key;
    }
  }
}

TEST_P(KvStoreP, CrashRecoverFansOutToEveryShardInstance) {
  // Touch keys in every shard, crash replica 0, recover it, and keep using
  // keys in every shard through it: every per-key instance must have been
  // re-armed by on_recover.
  KvCluster cluster(6, GetParam());
  std::vector<std::string> keys;
  for (int i = 0; i < 32; ++i) keys.push_back("key" + std::to_string(i));
  std::vector<KvClient::Step> warm;
  for (const auto& key : keys) warm.push_back({key, false});
  cluster.sim->add_node([&warm](net::Context& ctx) {
    return std::make_unique<KvClient>(ctx, 0, warm);
  });
  // Crash replica 0 after the warm phase has drained, recover it, then run
  // a second (delayed-start) client through it.
  cluster.sim->call_at(200 * kMillisecond,
                       [&] { cluster.sim->set_down(0, true); });
  cluster.sim->call_at(220 * kMillisecond,
                       [&] { cluster.sim->set_down(0, false); });
  std::vector<KvClient::Step> after;
  for (const auto& key : keys) after.push_back({key, false});
  for (const auto& key : keys) after.push_back({key, true});
  const NodeId client = cluster.sim->add_node([&after](net::Context& ctx) {
    return std::make_unique<KvClient>(ctx, 0, after, 300 * kMillisecond);
  });
  cluster.sim->run_to_completion();
  if (GetParam() >= 4) {
    // 32 distinct keys must not all land in one shard.
    std::size_t populated = 0;
    for (std::uint32_t s = 0; s < GetParam(); ++s)
      populated += cluster.store(0).shard_key_count(s) > 0 ? 1 : 0;
    EXPECT_GT(populated, 1u);
  }
  const auto& reads = cluster.sim->endpoint_as<KvClient>(client).reads;
  ASSERT_EQ(reads.size(), keys.size());
  for (const auto& [key, value] : reads) EXPECT_EQ(value, 2u) << "key " << key;
}

TEST_P(KvStoreP, MalformedEnvelopesAreDropped) {
  KvCluster cluster(5, GetParam());
  Rng rng(9);
  auto& store = cluster.store(0);
  const LogLevel saved_level = log_level();
  set_log_level(LogLevel::kError);  // provoking drops; keep the output quiet
  for (int i = 0; i < 2000; ++i) {
    Bytes junk(rng.next_below(48));
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.next_u64());
    store.on_message(1, junk);
  }
  set_log_level(saved_level);
  EXPECT_EQ(store.key_count(), 0u);
}

}  // namespace
}  // namespace lsr::kv
