// Closed-loop multi-key client that records every operation into a
// KeyedHistory for per-key linearizability checking of the sharded KV
// store. The KV sibling of RecordingClient: each request picks a random key
// from a shared keyspace, wraps the command in a shard envelope, and files
// the completed operation under that key's history.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "bench/workload.h"
#include "common/assert.h"
#include "common/rng.h"
#include "common/types.h"
#include "common/wire.h"
#include "kv/shard.h"
#include "net/context.h"
#include "rsm/client_msg.h"
#include "verify/history.h"

namespace lsr::verify {

class KvRecordingClient final : public net::Endpoint {
 public:
  // max_ops == 0: run until the simulation stops. `zipf` (optional, not
  // owned) skews key popularity the way the bench workload does; null picks
  // keys uniformly.
  KvRecordingClient(net::Context& ctx, NodeId replica,
                    const std::vector<std::string>* keys, double read_ratio,
                    std::uint64_t seed, KeyedHistory* history,
                    std::uint64_t max_ops = 0,
                    const bench::Zipfian* zipf = nullptr)
      : ctx_(ctx),
        retry_(ctx, replica),
        keys_(keys),
        zipf_(zipf),
        read_ratio_(read_ratio),
        rng_(seed),
        history_(history),
        max_ops_(max_ops) {
    LSR_EXPECTS(keys_ != nullptr && !keys_->empty());
    LSR_EXPECTS(zipf_ == nullptr || zipf_->items() <= keys_->size());
  }

  // Enables request retransmission (same request id and key) after
  // `timeout`; see bench::RetrySchedule. The log baselines need it under
  // crash/partition nemeses (a follower that forwarded a command to a dead
  // leader does not keep it); their replicated session tables dedup retries
  // across replicas, so failover is safe there. The CRDT store dedups
  // through the proposer's per-replica session table
  // (ProtocolConfig::client_sessions): retransmission to the *same* replica
  // is always sound, and with ProtocolConfig::replicate_sessions the
  // session markers ride the lattice so failover is sound too (a flagged
  // retry probes the quorum before applying). Without replicate_sessions,
  // keep failover_after = 0 on the CRDT path — a retry that lands on a
  // different replica would re-apply the update.
  //
  // max_retries > 0 bounds retransmissions per request. An exhausted
  // request is ABANDONED, not forgotten: the operation was invoked, so an
  // update may still commit server-side at any later time — it enters the
  // history as possibly-applied forever (response = +inf, the flush_pending
  // convention) so the linearizability verdict stays sound. An abandoned
  // read constrains nothing and is dropped. Either way the closed loop
  // moves on instead of wedging on one dead request.
  void enable_retry(TimeNs timeout, int failover_after, NodeId replica_count,
                    int max_retries = 0) {
    retry_.enable(timeout, failover_after, replica_count, max_retries);
    retry_.on_exhausted = [this] { abandon_inflight(); };
  }

  // After every failover, query the new target for the current member table
  // and adopt its replica count (see bench::KvWorkloadClient) — the process
  // harness uses this so a client outlives a 3→5 grow.
  void enable_members_refresh() {
    retry_.on_failover = [this](NodeId target) {
      Encoder enc;
      rsm::MembersQuery{make_request_id(ctx_.self(), next_counter_++)}.encode(
          enc);
      ctx_.send(target, std::move(enc).take());
    };
  }

  void on_start() override {
    if (!paused_) submit_next();
  }

  void on_message(NodeId from, ByteSpan data) override {
    (void)from;
    kv::EnvelopeView env;
    if (!kv::peek_envelope(data, env)) {
      handle_members_reply(data);
      return;
    }
    Decoder dec(env.inner, env.inner_size);
    try {
      const std::uint8_t tag = dec.get_u8();
      if (tag == static_cast<std::uint8_t>(rsm::ClientTag::kUpdateDone)) {
        const auto done = rsm::UpdateDone::decode(dec);
        if (done.request != inflight_request_) return;
        history_->for_key(inflight_key_)
            .add_increment(inflight_start_, ctx_.now(), 1);
      } else if (tag == static_cast<std::uint8_t>(rsm::ClientTag::kQueryDone)) {
        const auto done = rsm::QueryDone::decode(dec);
        if (done.request != inflight_request_) return;
        Decoder result(done.result);
        history_->for_key(inflight_key_)
            .add_read(inflight_start_, ctx_.now(), result.get_u64());
      } else {
        return;
      }
    } catch (const WireError&) {
      return;
    }
    retry_.acknowledged();
    ++completed_;
    inflight_request_ = 0;
    if (!paused_ && (max_ops_ == 0 || completed_ < max_ops_)) submit_next();
  }

  // Atomic so real-time hosts (InprocCluster, TcpCluster) can poll progress
  // from outside the client's executor thread.
  std::uint64_t completed() const { return completed_.load(); }

  // Requests whose retransmission budget ran out (see enable_retry). Their
  // updates are already in the history as possibly-applied.
  std::uint64_t abandoned() const { return abandoned_.load(); }

  // Pause/resume the closed loop. Pausing lets the in-flight operation (if
  // any) complete but submits nothing new — nemesis tests use this to let a
  // keyspace go fully idle (and the leaders demote) before injecting the
  // next fault. Resuming submits immediately when the client is idle.
  // Pausing is safe from any thread (paused_ and the in-flight id are
  // atomic); RESUMING from outside the executor is only safe once the
  // client is idle and no late replies can race the re-submission.
  void set_paused(bool paused) {
    if (paused_.exchange(paused) == paused) return;
    if (!paused && inflight_request_.load() == 0 &&
        (max_ops_ == 0 || completed_.load() < max_ops_))
      submit_next();
  }

  // True once nothing is in flight — with set_paused(true), the quiescent
  // point where every started operation has been recorded. Atomic so
  // real-time hosts can poll the drain from outside the executor.
  bool idle() const { return inflight_request_.load() == 0; }

  // Call after the run: records a still-pending update as possibly-applied
  // (response = +inf) under its key — an update whose ack was lost may
  // nevertheless be visible to reads. Pending reads constrain nothing and
  // are dropped.
  void flush_pending() {
    if (inflight_request_ == 0 || !inflight_is_update_) return;
    history_->for_key(inflight_key_)
        .add_increment(inflight_start_, std::numeric_limits<TimeNs>::max(), 1);
    inflight_request_ = 0;
  }

 private:
  void handle_members_reply(ByteSpan data) {
    Decoder dec(data);
    try {
      if (dec.get_u8() !=
          static_cast<std::uint8_t>(rsm::ClientTag::kMembersReply))
        return;
      const auto reply = rsm::MembersReply::decode(dec);
      if (reply.replicas > 0)
        retry_.set_replica_count(static_cast<NodeId>(reply.replicas));
    } catch (const WireError&) {
    }
  }

  void abandon_inflight() {
    if (inflight_request_ != 0 && inflight_is_update_)
      history_->for_key(inflight_key_)
          .add_increment(inflight_start_, std::numeric_limits<TimeNs>::max(),
                         1);
    inflight_request_ = 0;
    ++abandoned_;
    if (!paused_ && (max_ops_ == 0 || completed_.load() < max_ops_))
      submit_next();
  }

  void submit_next() {
    const bool is_read = rng_.next_bool(read_ratio_);
    inflight_is_update_ = !is_read;
    inflight_start_ = ctx_.now();
    inflight_request_ = make_request_id(ctx_.self(), next_counter_++);
    const std::uint64_t rank = zipf_ != nullptr
                                   ? zipf_->next(rng_)
                                   : rng_.next_below(keys_->size());
    inflight_key_ = (*keys_)[rank];
    transmit();
  }

  void transmit() {
    Encoder inner;
    if (!inflight_is_update_) {
      rsm::ClientQuery{inflight_request_, 0, {}}.encode(inner);
    } else {
      Encoder args;
      args.put_u64(1);
      rsm::ClientUpdate{inflight_request_, 0, std::move(args).take(),
                        retry_.retrying() ? rsm::kClientRetryFlag
                                          : std::uint8_t{0}}
          .encode(inner);
    }
    ctx_.send(retry_.replica(), kv::make_envelope(inflight_key_, inner.bytes()));
    retry_.after_send([this] { transmit(); });
  }

  net::Context& ctx_;
  bench::RetrySchedule retry_;
  const std::vector<std::string>* keys_;
  const bench::Zipfian* zipf_;
  double read_ratio_;
  Rng rng_;
  KeyedHistory* history_;
  std::uint64_t max_ops_;
  // Atomic for cross-thread pause/drain polling (set_paused, idle); all
  // writes still happen on the executor or after the host stopped.
  std::atomic<RequestId> inflight_request_{0};
  bool inflight_is_update_ = false;
  std::string inflight_key_;
  TimeNs inflight_start_ = 0;
  std::uint64_t next_counter_ = 0;
  std::atomic<bool> paused_{false};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> abandoned_{0};
};

}  // namespace lsr::verify
