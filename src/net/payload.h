// Owning handle for a received message payload, shared by every threaded
// transport's mailbox. Two representations:
//
//  - inline: the payload owns its own Bytes (an inproc sender moves the
//    buffer it just encoded straight into the destination mailbox);
//  - slab:   a span into a shared receive slab plus a reference that keeps
//    the slab alive (the TCP io thread parses frames in place and posts them
//    without copying a single payload byte out of the stream buffer).
//
// Handlers only ever see the ByteSpan view, so the two are indistinguishable
// past the mailbox — which is what lets the TCP receive path be zero-copy
// while the Endpoint interface stays transport-agnostic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.h"

namespace lsr::net {

class Payload {
 public:
  Payload() = default;

  // Inline representation; implicit so post(from, std::move(bytes)) keeps
  // working unchanged for every existing caller.
  Payload(Bytes bytes) : owned_(std::move(bytes)) {}  // NOLINT(runtime/explicit)

  // Slab representation: [data, data+size) must point into *slab.
  Payload(std::shared_ptr<const Bytes> slab, const std::uint8_t* data,
          std::size_t size)
      : slab_(std::move(slab)), data_(data), size_(size) {}

  ByteSpan view() const {
    return slab_ ? ByteSpan{data_, size_} : ByteSpan{owned_};
  }
  std::size_t size() const { return slab_ ? size_ : owned_.size(); }

 private:
  Bytes owned_;
  std::shared_ptr<const Bytes> slab_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

// Receive-slab pool with epoch-based reclamation. A reactor's FrameReaders
// acquire their slabs here instead of allocating fresh ones; a slab the
// reader has exhausted is *retired* into a limbo list stamped with the
// pool's current epoch (the reactor advances the epoch once per io cycle).
// A retired slab is recycled only when both reclamation conditions hold:
//
//   1. a grace period of full epochs has passed since it was retired (no
//      io cycle that could still be parsing it is in flight), and
//   2. no lent Payload span still references it — the pool holds the only
//      remaining shared_ptr, so nobody can resurrect a reference.
//
// Handlers may therefore keep Payload spans alive for arbitrarily many
// cycles (a mailbox backlog, a deliberately retained message): the slab
// they pin simply waits in limbo and is reused the moment they let go,
// instead of each replacement allocating a fresh slab and leaving the old
// one to the allocator. Single-threaded by design — one pool per reactor,
// touched only from that reactor's thread (condition 2 is still safe under
// concurrent Payload destruction: once the pool observes use_count() == 1
// on the reference it exclusively owns, no other reference can reappear).
class SlabPool {
 public:
  static constexpr std::size_t kDefaultSlabSize = 256 * 1024;

  explicit SlabPool(std::size_t slab_size = kDefaultSlabSize,
                    std::size_t max_free = 8, std::uint64_t grace_epochs = 2)
      : slab_size_(slab_size), max_free_(max_free), grace_(grace_epochs) {}

  // A slab of at least min_size bytes: recycled from the free list when one
  // fits, freshly allocated otherwise.
  std::shared_ptr<Bytes> acquire(std::size_t min_size) {
    reclaim();
    for (std::size_t i = free_.size(); i-- > 0;) {
      if (free_[i]->size() >= min_size) {
        auto slab = std::move(free_[i]);
        free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
        ++recycled_;
        return slab;
      }
    }
    ++allocated_;
    return std::make_shared<Bytes>(std::max(slab_size_, min_size));
  }

  // Hands a slab the reader is done filling back to the pool; lent Payload
  // spans into it stay valid (they share ownership) and only their release
  // plus the epoch grace period makes it reusable.
  void retire(std::shared_ptr<Bytes> slab) {
    if (!slab) return;
    limbo_.push_back({std::move(slab), epoch_});
  }

  // Cycle boundary: everything retired before this call ages one epoch.
  void advance_epoch() { ++epoch_; }

  // Sweeps limbo into the free list. Called from acquire(); public so tests
  // can force a sweep without acquiring.
  void reclaim() {
    for (std::size_t i = limbo_.size(); i-- > 0;) {
      Retired& r = limbo_[i];
      if (epoch_ - r.epoch < grace_) continue;
      // use_count() == 1 observed on the sole reference we own is stable:
      // new references only come from existing ones.
      if (r.slab.use_count() != 1) continue;
      if (free_.size() < max_free_) free_.push_back(std::move(r.slab));
      limbo_.erase(limbo_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  std::uint64_t allocated() const { return allocated_; }  // fresh allocations
  std::uint64_t recycled() const { return recycled_; }    // free-list reuses
  std::size_t limbo() const { return limbo_.size(); }
  std::size_t free_slabs() const { return free_.size(); }
  std::uint64_t epoch() const { return epoch_; }

 private:
  struct Retired {
    std::shared_ptr<Bytes> slab;
    std::uint64_t epoch;
  };

  std::size_t slab_size_;
  std::size_t max_free_;
  std::uint64_t grace_;
  std::uint64_t epoch_ = 0;
  std::uint64_t allocated_ = 0;
  std::uint64_t recycled_ = 0;
  std::vector<Retired> limbo_;
  std::vector<std::shared_ptr<Bytes>> free_;
};

}  // namespace lsr::net
