// Keyed log-baseline runtime: the log-based comparators (Multi-Paxos, Raft)
// lifted onto the same sharded key-space the CRDT ShardedStore serves, so
// all three systems run the identical multi-key workload — the Fig. 1-style
// comparison on a realistic Zipfian keyspace instead of a single counter.
//
// Same two-level structure and the exact same wire envelope as the CRDT
// store (shard.h: tag + FNV-1a key hash + key + inner message), so clients,
// recording clients and transports are shared unchanged:
//   shard = unit of parallelism. The log baselines run a single peer FSM per
//           instance (one execution lane), so each shard maps onto ONE lane
//           (its own executor group), not the CRDT store's
//           acceptor/proposer pair.
//   key   = unit of replication. Every key gets its own complete Backend
//           replica — leader, lease/election timers, command log, snapshots
//           — created on demand on first touch. This is the honest cost of
//           "fine-granular" log-based SMR the paper argues against: per-key
//           leaders, per-key heartbeat traffic and per-key log storage.
//
// Backend contract: constructor (Context&, vector<NodeId>, Config), a
// Config typedef, span on_message(NodeId, const uint8_t*, size_t),
// on_start/on_recover, stats() with a peak_log_entries field, is_leader().
// paxos::MultiPaxosReplica and raft::RaftReplica both satisfy it.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/logging.h"
#include "common/types.h"
#include "kv/keyed_context.h"
#include "kv/shard.h"
#include "net/context.h"

namespace lsr::kv {

// Per-key config perturbation: backends with randomized timers (Raft's
// election timeouts) must not run every key of one node in lockstep, and
// the replicas of one key must not share a timer stream either (lockstep
// timeouts mean repeated split votes), so any config carrying an rng seed
// gets a stream derived from both the key hash and the hosting replica.
template <typename Config>
Config per_key_config(Config config, std::uint32_t key_hash, NodeId self) {
  if constexpr (requires { config.rng_seed; }) {
    config.rng_seed =
        (config.rng_seed * 0x100000001B3ull ^ (key_hash | 1u)) +
        0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(self) + 1);
  }
  return config;
}

template <typename Backend>
class KeyedLogStore final : public net::Endpoint {
 public:
  using Config = typename Backend::Config;

  KeyedLogStore(net::Context& ctx, std::vector<NodeId> replicas,
                Config config = {}, ShardOptions options = {})
      : ctx_(ctx),
        replicas_(std::move(replicas)),
        config_(config),
        shards_(options.shards),
        executor_groups_(static_cast<int>(options.groups())) {
    LSR_EXPECTS(options.valid());
  }

  void on_start() override {
    for (auto& shard : shards_)
      for (auto& [key, instance] : shard.instances) instance->replica.on_start();
  }

  // Crash recovery fans out to every per-key instance in every shard.
  void on_recover() override {
    for (auto& shard : shards_)
      for (auto& [key, instance] : shard.instances)
        instance->replica.on_recover();
  }

  // One lane per shard: the baselines model a single peer FSM, so a shard is
  // exactly one serial executor (vs the CRDT store's two lanes per shard).
  // As in ShardedStore, shards fold round-robin onto the configured executor
  // groups (default: one group per shard).
  int lane_count() const override { return static_cast<int>(shards_.size()); }
  int executor_count() const override { return executor_groups_; }
  int executor_of(int lane) const override { return lane % executor_groups_; }

  int lane_of(ByteSpan data) const override {
    EnvelopeView env;
    if (!peek_envelope(data, env)) return 0;
    return static_cast<int>(shard_of_hash(env.key_hash, shard_count()));
  }

  void on_message(NodeId from, ByteSpan data) override {
    EnvelopeView env;
    if (!peek_envelope(data, env)) {
      LSR_LOG_WARN("keyed-log %u: malformed envelope from %u (%zu bytes)",
                   ctx_.self(), from, data.size());
      return;
    }
    if (env.key_hash != fnv1a(env.key)) {
      LSR_LOG_WARN("keyed-log %u: envelope hash mismatch for key '%.*s' from %u",
                   ctx_.self(), static_cast<int>(env.key.size()),
                   env.key.data(), from);
      return;
    }
    // Zero-copy delivery: the backend decodes the inner message in place and
    // drops malformed input itself (WireError catch in its dispatcher).
    instance(env.key_hash, env.key)
        .replica.on_message(from, env.inner, env.inner_size);
  }

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }

  ShardId shard_of(std::string_view key) const {
    return shard_of_hash(fnv1a(key), shard_count());
  }

  std::size_t key_count() const {
    std::size_t n = 0;
    for (const auto& shard : shards_) n += shard.instances.size();
    return n;
  }

  bool has_key(std::string_view key) const {
    const Shard& shard = shards_[shard_of(key)];
    return shard.instances.find(key) != shard.instances.end();
  }

  // Access to a key's backend replica (creates the instance if absent).
  Backend& replica_for(std::string_view key) {
    return instance(fnv1a(key), key).replica;
  }

  // Keys this node currently leads — the per-key leader census of the keyed
  // deployment (the CRDT system has no analogue: no key has a leader).
  std::size_t leader_count() const {
    std::size_t n = 0;
    for (const auto& shard : shards_)
      for (const auto& [key, instance] : shard.instances)
        if (instance->replica.is_leader()) ++n;
    return n;
  }

  // Aggregate log footprint across all keys hosted on this node: the sum of
  // per-key peak log sizes (each key pays its own log — the storage argument
  // of the paper against fine-granular log-based SMR).
  std::uint64_t peak_log_entries() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      for (const auto& [key, instance] : shard.instances)
        total += instance->replica.stats().peak_log_entries;
    return total;
  }

 private:
  struct Instance {
    Instance(net::Context& outer, std::string_view key, std::uint32_t key_hash,
             int base_lane, const std::vector<NodeId>& replicas,
             const Config& config)
        : context(outer, std::string(key), key_hash, base_lane),
          replica(context, replicas,
                  per_key_config(config, key_hash, outer.self())) {}

    KeyedContext context;
    Backend replica;
  };

  // Transparent lookup: incoming messages probe with the envelope's
  // string_view, no key copy on the hot path (same as ShardedStore).
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view key) const noexcept {
      return std::hash<std::string_view>{}(key);
    }
  };

  struct Shard {
    std::unordered_map<std::string, std::unique_ptr<Instance>, KeyHash,
                       std::equal_to<>>
        instances;
  };

  Instance& instance(std::uint32_t key_hash, std::string_view key) {
    const ShardId shard_id = shard_of_hash(key_hash, shard_count());
    Shard& shard = shards_[shard_id];
    const auto it = shard.instances.find(key);
    if (it != shard.instances.end()) return *it->second;
    auto created = std::make_unique<Instance>(ctx_, key, key_hash,
                                              static_cast<int>(shard_id),
                                              replicas_, config_);
    created->replica.on_start();
    return *shard.instances.emplace(std::string(key), std::move(created))
                .first->second;
  }

  net::Context& ctx_;
  std::vector<NodeId> replicas_;
  Config config_;
  std::vector<Shard> shards_;
  int executor_groups_;
};

}  // namespace lsr::kv
