#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/wire.h"
#include "net/context.h"

namespace lsr::sim {
namespace {

// Endpoint that records every delivery and can echo messages back.
class Recorder final : public net::Endpoint {
 public:
  explicit Recorder(net::Context& ctx) : ctx_(ctx) {}

  void on_message(NodeId from, ByteSpan data) override {
    received.push_back({from, Bytes(data.begin(), data.end()), ctx_.now()});
    if (echo && !data.empty() && data.front() == 0x01) {
      Bytes reply{0x02};
      ctx_.send(from, std::move(reply));
    }
  }

  void on_recover() override { ++recoveries; }

  struct Delivery {
    NodeId from;
    Bytes data;
    TimeNs at;
  };
  std::vector<Delivery> received;
  bool echo = false;
  int recoveries = 0;
  net::Context& ctx_;
};

Simulator::EndpointFactory recorder_factory() {
  return [](net::Context& ctx) { return std::make_unique<Recorder>(ctx); };
}

TEST(Simulator, DeliversWithinLatencyBounds) {
  NetworkConfig net;
  net.latency_min = 100 * kMicrosecond;
  net.latency_max = 200 * kMicrosecond;
  Simulator sim(1, net);
  const NodeId a = sim.add_node(recorder_factory());
  const NodeId b = sim.add_node(recorder_factory());
  sim.call_at(0, [&] {
    sim.endpoint_as<Recorder>(a).ctx_.send(b, Bytes{0x42});
  });
  sim.run_to_completion();
  auto& recorder = sim.endpoint_as<Recorder>(b);
  ASSERT_EQ(recorder.received.size(), 1u);
  EXPECT_EQ(recorder.received[0].from, a);
  // Delivery time = latency + service time.
  EXPECT_GE(recorder.received[0].at, net.latency_min);
  EXPECT_LE(recorder.received[0].at,
            net.latency_max + kMillisecond);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    const NodeId a = sim.add_node(recorder_factory());
    const NodeId b = sim.add_node(recorder_factory());
    sim.endpoint_as<Recorder>(b).echo = true;
    for (int i = 0; i < 50; ++i) {
      sim.call_at(i * 10 * kMicrosecond, [&sim, a, b] {
        sim.endpoint_as<Recorder>(a).ctx_.send(b, Bytes{0x01});
      });
    }
    sim.run_to_completion();
    std::vector<TimeNs> times;
    for (const auto& d : sim.endpoint_as<Recorder>(a).received)
      times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(Simulator, ServiceTimeSerializesLane) {
  // Two messages arriving simultaneously at one node must be handled
  // back-to-back, one service time apart.
  NetworkConfig net;
  net.latency_min = net.latency_max = 100 * kMicrosecond;
  NodeConfig node;
  node.service_ns = 10 * kMicrosecond;
  node.per_byte_ns = 0;
  Simulator sim(3, net, node);
  const NodeId a = sim.add_node(recorder_factory());
  const NodeId b = sim.add_node(recorder_factory());
  const NodeId c = sim.add_node(recorder_factory());
  sim.call_at(0, [&] {
    sim.endpoint_as<Recorder>(a).ctx_.send(c, Bytes{0x10});
    sim.endpoint_as<Recorder>(b).ctx_.send(c, Bytes{0x11});
  });
  sim.run_to_completion();
  auto& recorder = sim.endpoint_as<Recorder>(c);
  ASSERT_EQ(recorder.received.size(), 2u);
  const TimeNs gap = recorder.received[1].at - recorder.received[0].at;
  EXPECT_EQ(gap, node.service_ns);
}

TEST(Simulator, PartitionBlocksBothDirections) {
  Simulator sim(5);
  const NodeId a = sim.add_node(recorder_factory());
  const NodeId b = sim.add_node(recorder_factory());
  sim.set_partitioned(a, b, true);
  sim.call_at(0, [&] {
    sim.endpoint_as<Recorder>(a).ctx_.send(b, Bytes{1});
    sim.endpoint_as<Recorder>(b).ctx_.send(a, Bytes{2});
  });
  sim.run_to_completion();
  EXPECT_TRUE(sim.endpoint_as<Recorder>(a).received.empty());
  EXPECT_TRUE(sim.endpoint_as<Recorder>(b).received.empty());
  EXPECT_EQ(sim.messages_dropped(), 2u);

  // Healing restores delivery.
  sim.set_partitioned(a, b, false);
  sim.call_at(sim.now() + 1, [&] {
    sim.endpoint_as<Recorder>(a).ctx_.send(b, Bytes{3});
  });
  sim.run_to_completion();
  EXPECT_EQ(sim.endpoint_as<Recorder>(b).received.size(), 1u);
}

TEST(Simulator, DownNodeDropsMessagesAndRecovers) {
  Simulator sim(7);
  const NodeId a = sim.add_node(recorder_factory());
  const NodeId b = sim.add_node(recorder_factory());
  sim.run_for(kMillisecond);  // let on_start settle
  sim.set_down(b, true);
  EXPECT_TRUE(sim.is_down(b));
  sim.call_at(sim.now() + 1, [&] {
    sim.endpoint_as<Recorder>(a).ctx_.send(b, Bytes{1});
  });
  sim.run_for(10 * kMillisecond);
  EXPECT_TRUE(sim.endpoint_as<Recorder>(b).received.empty());
  sim.set_down(b, false);
  sim.run_for(10 * kMillisecond);
  EXPECT_EQ(sim.endpoint_as<Recorder>(b).recoveries, 1);
  sim.call_at(sim.now() + 1, [&] {
    sim.endpoint_as<Recorder>(a).ctx_.send(b, Bytes{2});
  });
  sim.run_for(10 * kMillisecond);
  ASSERT_EQ(sim.endpoint_as<Recorder>(b).received.size(), 1u);
  EXPECT_EQ(sim.endpoint_as<Recorder>(b).received[0].data, Bytes{2});
}

TEST(Simulator, LossDropsOnlyReplicaLinks) {
  NetworkConfig net;
  net.loss_probability = 1.0;  // drop everything on lossy links
  net.lossy_node_limit = 2;    // nodes 0 and 1 are "replicas"
  Simulator sim(9, net);
  const NodeId r0 = sim.add_node(recorder_factory());
  const NodeId r1 = sim.add_node(recorder_factory());
  const NodeId client = sim.add_node(recorder_factory());
  sim.call_at(0, [&] {
    sim.endpoint_as<Recorder>(r0).ctx_.send(r1, Bytes{1});      // dropped
    sim.endpoint_as<Recorder>(client).ctx_.send(r0, Bytes{2});  // delivered
  });
  sim.run_to_completion();
  EXPECT_TRUE(sim.endpoint_as<Recorder>(r1).received.empty());
  EXPECT_EQ(sim.endpoint_as<Recorder>(r0).received.size(), 1u);
}

TEST(Simulator, DuplicationDeliversTwice) {
  NetworkConfig net;
  net.duplicate_probability = 1.0;
  net.lossy_node_limit = 2;
  Simulator sim(11, net);
  const NodeId a = sim.add_node(recorder_factory());
  const NodeId b = sim.add_node(recorder_factory());
  sim.call_at(0, [&] {
    sim.endpoint_as<Recorder>(a).ctx_.send(b, Bytes{1});
  });
  sim.run_to_completion();
  EXPECT_EQ(sim.endpoint_as<Recorder>(b).received.size(), 2u);
}

TEST(Simulator, TimersFireInOrderAndCancel) {
  Simulator sim(13);
  const NodeId a = sim.add_node(recorder_factory());
  std::vector<int> fired;
  net::TimerId to_cancel = net::kInvalidTimer;
  sim.call_at(0, [&] {
    auto& ctx = sim.endpoint_as<Recorder>(a).ctx_;
    ctx.set_timer(3 * kMillisecond, 0, [&fired] { fired.push_back(3); });
    ctx.set_timer(1 * kMillisecond, 0, [&fired] { fired.push_back(1); });
    to_cancel =
        ctx.set_timer(2 * kMillisecond, 0, [&fired] { fired.push_back(2); });
    ctx.cancel_timer(to_cancel);
  });
  sim.run_to_completion();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(Simulator, CrashLosesPendingTimers) {
  Simulator sim(15);
  const NodeId a = sim.add_node(recorder_factory());
  int fired = 0;
  sim.call_at(0, [&] {
    sim.endpoint_as<Recorder>(a).ctx_.set_timer(5 * kMillisecond, 0,
                                                [&fired] { ++fired; });
  });
  sim.call_at(kMillisecond, [&] { sim.set_down(a, true); });
  sim.call_at(2 * kMillisecond, [&] { sim.set_down(a, false); });
  sim.run_to_completion();
  EXPECT_EQ(fired, 0);  // the timer died with the crash
}

TEST(Simulator, ConsumeExtendsLaneBusyTime) {
  // An endpoint that charges extra service time on the first message delays
  // the second message by that amount.
  class Consumer final : public net::Endpoint {
   public:
    explicit Consumer(net::Context& ctx) : ctx_(ctx) {}
    void on_message(NodeId, ByteSpan) override {
      arrival_times.push_back(ctx_.now());
      if (arrival_times.size() == 1) ctx_.consume(40 * kMicrosecond);
    }
    std::vector<TimeNs> arrival_times;
    net::Context& ctx_;
  };
  NetworkConfig net;
  net.latency_min = net.latency_max = 10 * kMicrosecond;
  NodeConfig node;
  node.service_ns = 5 * kMicrosecond;
  node.per_byte_ns = 0;
  Simulator sim(17, net, node);
  const NodeId a = sim.add_node(recorder_factory());
  const NodeId b = sim.add_node(
      [](net::Context& ctx) { return std::make_unique<Consumer>(ctx); });
  sim.call_at(0, [&] {
    sim.endpoint_as<Recorder>(a).ctx_.send(b, Bytes{1});
    sim.endpoint_as<Recorder>(a).ctx_.send(b, Bytes{2});
  });
  sim.run_to_completion();
  auto& consumer = sim.endpoint_as<Consumer>(b);
  ASSERT_EQ(consumer.arrival_times.size(), 2u);
  // Second handling = first handling + consume(40us) + service(5us).
  EXPECT_EQ(consumer.arrival_times[1] - consumer.arrival_times[0],
            45 * kMicrosecond);
}

TEST(Simulator, WireStatsCount) {
  Simulator sim(19);
  const NodeId a = sim.add_node(recorder_factory());
  const NodeId b = sim.add_node(recorder_factory());
  sim.call_at(0, [&] {
    sim.endpoint_as<Recorder>(a).ctx_.send(b, Bytes(10, 0xAA));
  });
  sim.run_to_completion();
  EXPECT_EQ(sim.messages_sent(), 1u);
  EXPECT_EQ(sim.bytes_sent(), 10u);
}

}  // namespace
}  // namespace lsr::sim
