#include "bench/report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/assert.h"
#include "common/logging.h"

namespace lsr::bench {

namespace {

// A cell that fully parses as a finite double and uses plain decimal
// notation is emitted as a JSON number. "nan"/"inf" and hex floats parse via
// strtod but are not valid JSON number tokens, so they stay quoted.
bool is_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (const char c : cell) {
    const bool decimal = (c >= '0' && c <= '9') || c == '+' || c == '-' ||
                         c == '.' || c == 'e' || c == 'E';
    if (!decimal) return false;
  }
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size() && std::isfinite(value);
}

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_json_cell(std::ostream& out, const std::string& cell) {
  if (is_numeric(cell))
    out << cell;
  else
    write_json_string(out, cell);
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  LSR_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out, bool csv) const {
  if (csv) {
    for (std::size_t i = 0; i < headers_.size(); ++i)
      out << (i ? "," : "") << headers_[i];
    out << "\n";
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size(); ++i)
        out << (i ? "," : "") << row[i];
      out << "\n";
    }
    return;
  }
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << (i ? "  " : "");
      out << cells[i];
      for (std::size_t pad = cells[i].size(); pad < widths[i]; ++pad)
        out << ' ';
    }
    out << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void JsonReport::set_meta(const std::string& key, const std::string& value) {
  std::ostringstream rendered;
  write_json_string(rendered, value);
  meta_.emplace_back(key, rendered.str());
}

void JsonReport::set_meta(const std::string& key, double value) {
  char buf[64];
  if (std::isfinite(value))
    std::snprintf(buf, sizeof buf, "%.12g", value);
  else
    std::snprintf(buf, sizeof buf, "null");
  meta_.emplace_back(key, buf);
}

void JsonReport::add_table(const std::string& name, const Table& table,
                           RowAnnotations annotations) {
  tables_.push_back({name, table, std::move(annotations)});
}

void JsonReport::write(std::ostream& out) const {
  out << "{\n  \"meta\": {";
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    out << (i ? ", " : "");
    write_json_string(out, meta_[i].first);
    out << ": " << meta_[i].second;
  }
  out << "},\n  \"tables\": {";
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const auto& [name, table, annotations] = tables_[t];
    out << (t ? ",\n    " : "\n    ");
    write_json_string(out, name);
    out << ": [";
    for (std::size_t r = 0; r < table.rows().size(); ++r) {
      const auto& row = table.rows()[r];
      out << (r ? ",\n      " : "\n      ") << "{";
      for (std::size_t a = 0; a < annotations.size(); ++a) {
        out << (a ? ", " : "");
        write_json_string(out, annotations[a].first);
        out << ": ";
        write_json_cell(out, annotations[a].second);
      }
      for (std::size_t c = 0; c < row.size(); ++c) {
        out << (c || !annotations.empty() ? ", " : "");
        write_json_string(out, table.headers()[c]);
        out << ": ";
        write_json_cell(out, row[c]);
      }
      out << "}";
    }
    out << (table.rows().empty() ? "]" : "\n    ]");
  }
  out << (tables_.empty() ? "}" : "\n  }") << "\n}\n";
}

bool JsonReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    LSR_LOG_WARN("cannot write JSON report to %s", path.c_str());
    return false;
  }
  write(out);
  return out.good();
}

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_si(double value) {
  char buf[64];
  if (value >= 1e6)
    std::snprintf(buf, sizeof buf, "%.2fM", value / 1e6);
  else if (value >= 1e3)
    std::snprintf(buf, sizeof buf, "%.1fk", value / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.1f", value);
  return buf;
}

std::string fmt_ms(TimeNs ns, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f",
                precision, static_cast<double>(ns) / kMillisecond);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

TimeNs BenchArgs::warmup() const {
  return full ? 2 * kSecond : 500 * kMillisecond;
}

TimeNs BenchArgs::measure() const { return full ? 10 * kSecond : 2 * kSecond; }

BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      args.csv = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    }
  }
  return args;
}

}  // namespace lsr::bench
