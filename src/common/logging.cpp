#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstring>

namespace lsr {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

std::string format_message(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char stack_buf[512];
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(stack_buf, sizeof stack_buf, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(copy);
    return "<format error>";
  }
  if (static_cast<std::size_t>(needed) < sizeof stack_buf) {
    va_end(copy);
    return std::string(stack_buf, static_cast<std::size_t>(needed));
  }
  std::string big(static_cast<std::size_t>(needed) + 1, '\0');
  std::vsnprintf(big.data(), big.size(), fmt, copy);
  va_end(copy);
  big.resize(static_cast<std::size_t>(needed));
  return big;
}

void log_line(LogLevel level, const char* file, int line, const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%s] %s:%d %s\n", level_name(level), base, line,
               msg.c_str());
}

}  // namespace detail

}  // namespace lsr
