// Last-writer-wins register: value tagged with (timestamp, writer id); join
// keeps the tag-larger write. Timestamps are caller-supplied (logical clocks
// in the examples) with the writer id breaking ties deterministically.
#pragma once

#include <cstdint>
#include <tuple>

#include "common/codec.h"
#include "common/wire.h"

namespace lsr::lattice {

template <WireCodable T>
class LWWRegister {
 public:
  LWWRegister() = default;

  void assign(T value, std::int64_t timestamp, std::uint32_t writer) {
    // Only inflationary writes are applied; an older timestamp loses.
    if (std::tie(timestamp, writer) >= std::tie(timestamp_, writer_)) {
      value_ = std::move(value);
      timestamp_ = timestamp;
      writer_ = writer;
    }
  }

  const T& value() const { return value_; }
  std::int64_t timestamp() const { return timestamp_; }
  std::uint32_t writer() const { return writer_; }

  void join(const LWWRegister& other) {
    if (std::tie(other.timestamp_, other.writer_) >
        std::tie(timestamp_, writer_)) {
      value_ = other.value_;
      timestamp_ = other.timestamp_;
      writer_ = other.writer_;
    }
  }

  bool leq(const LWWRegister& other) const {
    return std::tie(timestamp_, writer_) <=
           std::tie(other.timestamp_, other.writer_);
  }

  bool operator==(const LWWRegister& other) const {
    return timestamp_ == other.timestamp_ && writer_ == other.writer_;
  }

  void encode(Encoder& enc) const {
    enc.put_i64(timestamp_);
    enc.put_u32(writer_);
    wire_put(enc, value_);
  }

  static LWWRegister decode(Decoder& dec) {
    LWWRegister reg;
    reg.timestamp_ = dec.get_i64();
    reg.writer_ = dec.get_u32();
    reg.value_ = wire_get<T>(dec);
    return reg;
  }

 private:
  T value_{};
  std::int64_t timestamp_ = 0;
  std::uint32_t writer_ = 0;
};

}  // namespace lsr::lattice
