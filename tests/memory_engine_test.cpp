// Memory engine: the arena allocator (bump chunks + size-bucketed reuse),
// interned keys (refcounted shared envelope prefix), the one shared
// lazy-create path for both first-touch directions, eviction returning
// instance memory to the shard arena, and the create/evict/recreate churn
// that proves arena reuse is use-after-free-clean under ASan while message
// buffers are held across eviction rounds.
#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ops.h"
#include "kv/interned_key.h"
#include "kv/keyed_log_store.h"
#include "kv/shard.h"
#include "kv/sharded_store.h"
#include "lattice/gcounter.h"
#include "paxos/multipaxos.h"
#include "raft/raft.h"
#include "rsm/client_msg.h"
#include "sim/simulator.h"

namespace lsr {
namespace {

using kv::InternedKey;
using kv::InternedKeyEq;
using kv::InternedKeyHash;
using lattice::GCounter;
using CrdtStore = kv::ShardedStore<GCounter>;
using PaxosStore = kv::KeyedLogStore<paxos::MultiPaxosReplica>;
using RaftStore = kv::KeyedLogStore<raft::RaftReplica>;

// ---- arena --------------------------------------------------------------

TEST(Arena, BlocksAreAlignedAndAccounted) {
  Arena arena;
  void* a = arena.allocate(1);
  void* b = arena.allocate(100, 8);
  void* c = arena.allocate(64);
  for (void* p : {a, b, c})
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Arena::kMinAlign, 0u);
  EXPECT_EQ(arena.stats().chunks, 1u);
  EXPECT_EQ(arena.stats().allocations, 3u);
  // 1 -> 16 (free-list minimum), 100 -> 112, 64 -> 64.
  EXPECT_EQ(arena.stats().bytes_live, 16u + 112u + 64u);
}

TEST(Arena, FreedBlocksAreReusedBySizeClass) {
  Arena arena;
  void* first = arena.allocate(48);
  arena.deallocate(first, 48);
  void* second = arena.allocate(48);
  EXPECT_EQ(first, second);  // served from the 48-byte free list
  EXPECT_EQ(arena.stats().reuses, 1u);
  // A different size class does not steal the block.
  arena.deallocate(second, 48);
  void* other = arena.allocate(128);
  EXPECT_NE(other, second);
  EXPECT_EQ(arena.stats().reuses, 1u);
}

TEST(Arena, OversizedAllocationGetsItsOwnChunk) {
  Arena arena(1024);
  void* big = arena.allocate(100 * 1024);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(arena.stats().bytes_reserved, 100u * 1024u);
  // The arena still serves small blocks afterwards.
  EXPECT_NE(arena.allocate(32), nullptr);
}

TEST(Arena, CreateDestroyRunsConstructorsAndRecycles) {
  struct Probe {
    explicit Probe(int* counter) : counter_(counter) { ++*counter_; }
    ~Probe() { --*counter_; }
    int* counter_;
    char pad[40];
  };
  Arena arena;
  int live = 0;
  Probe* p = arena.create<Probe>(&live);
  EXPECT_EQ(live, 1);
  arena.destroy(p);
  EXPECT_EQ(live, 0);
  EXPECT_EQ(arena.stats().bytes_live, 0u);
  Probe* q = arena.create<Probe>(&live);
  EXPECT_EQ(static_cast<void*>(q), static_cast<void*>(p));  // recycled block
  arena.destroy(q);
}

TEST(Arena, SteadyStateChurnStopsReservingMemory) {
  Arena arena;
  std::vector<void*> blocks;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 1000; ++i) blocks.push_back(arena.allocate(96));
    for (void* p : blocks) arena.deallocate(p, 96);
    blocks.clear();
    if (round == 0) {
      const std::size_t after_first = arena.stats().bytes_reserved;
      EXPECT_GT(after_first, 0u);
    }
  }
  const std::size_t reserved = arena.stats().bytes_reserved;
  for (int i = 0; i < 1000; ++i) blocks.push_back(arena.allocate(96));
  EXPECT_EQ(arena.stats().bytes_reserved, reserved);  // all reuse, no growth
  for (void* p : blocks) arena.deallocate(p, 96);
}

// ---- interned keys ------------------------------------------------------

TEST(InternedKey, PrefixReproducesMakeEnvelopeExactly) {
  for (const std::string& key : {std::string("k"), std::string(40, 'x'),
                                 std::string(300, 'y')}) {
    const std::uint32_t hash = kv::fnv1a(key);
    const InternedKey interned =
        InternedKey::intern(key, hash, kv::kEnvelopeTag);
    Encoder inner_enc;
    inner_enc.put_u64(0xDEADBEEF);
    const Bytes inner = std::move(inner_enc).take();
    const Bytes expected = kv::make_envelope(hash, key, inner);
    const ByteSpan prefix = interned.envelope_prefix();
    Bytes assembled(prefix.begin(), prefix.end());
    assembled.insert(assembled.end(), inner.begin(), inner.end());
    EXPECT_EQ(assembled, expected) << "key length " << key.size();
    EXPECT_EQ(interned.view(), key);
    EXPECT_EQ(interned.hash(), hash);
  }
}

TEST(InternedKey, RefcountSharesOneBlock) {
  InternedKey a = InternedKey::intern("shared", kv::fnv1a("shared"),
                                      kv::kEnvelopeTag);
  EXPECT_EQ(a.use_count(), 1u);
  InternedKey b = a;
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(a.envelope_prefix().data(), b.envelope_prefix().data());
  InternedKey c = std::move(b);
  EXPECT_EQ(a.use_count(), 2u);  // move does not add a reference
  c = InternedKey();
  EXPECT_EQ(a.use_count(), 1u);
}

TEST(InternedKey, ArenaBackedBlocksReturnToTheArena) {
  Arena arena;
  const char* block = nullptr;
  {
    InternedKey key = InternedKey::intern("arena-key", kv::fnv1a("arena-key"),
                                          kv::kEnvelopeTag, &arena);
    block = reinterpret_cast<const char*>(key.envelope_prefix().data());
    EXPECT_GT(arena.stats().bytes_live, 0u);
  }
  EXPECT_EQ(arena.stats().bytes_live, 0u);
  // The freed rep is recycled for the next same-sized intern.
  InternedKey again = InternedKey::intern("arena-kez", kv::fnv1a("arena-kez"),
                                          kv::kEnvelopeTag, &arena);
  EXPECT_EQ(reinterpret_cast<const char*>(again.envelope_prefix().data()),
            block);
}

TEST(InternedKey, TransparentMapLookupByStringView) {
  std::unordered_map<InternedKey, int, InternedKeyHash, InternedKeyEq> map;
  map.emplace(InternedKey::intern("alpha", kv::fnv1a("alpha"),
                                  kv::kEnvelopeTag),
              1);
  map.emplace(InternedKey::intern("beta", kv::fnv1a("beta"), kv::kEnvelopeTag),
              2);
  const auto it = map.find(std::string_view("alpha"));
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->second, 1);
  EXPECT_EQ(map.find(std::string_view("gamma")), map.end());
}

// ---- shared lazy-create path (both first-touch directions) --------------

// A key's instance can materialize on a replica either because a local
// command touched it first (replica_for / a client envelope) or because a
// remote protocol message arrived first (a peer's Prepare/AppendEntries).
// Both directions run the same instance() path; this drives one key through
// each direction and demands identical outcomes.
class CountClient final : public net::Endpoint {
 public:
  CountClient(net::Context& ctx, NodeId target) : ctx_(ctx), target_(target) {}

  void on_message(NodeId, ByteSpan data) override {
    kv::EnvelopeView env;
    if (!kv::peek_envelope(data, env)) return;
    Decoder dec(env.inner, env.inner_size);
    try {
      const auto tag = static_cast<rsm::ClientTag>(dec.get_u8());
      if (tag == rsm::ClientTag::kUpdateDone) {
        ++updates_done;
      } else if (tag == rsm::ClientTag::kQueryDone) {
        const auto done = rsm::QueryDone::decode(dec);
        Decoder result(done.result);
        reads[std::string(env.key)] = result.get_u64();
      }
    } catch (const WireError&) {
    }
  }

  void update(std::string_view key, NodeId target = kNobody) {
    Encoder inner;
    rsm::ClientUpdate{make_request_id(ctx_.self(), seq_++), 0,
                      core::encode_increment_args(1)}
        .encode(inner);
    ctx_.send(target == kNobody ? target_ : target,
              kv::make_envelope(key, inner.bytes()));
  }

  void query(std::string_view key, NodeId target = kNobody) {
    Encoder inner;
    rsm::ClientQuery{make_request_id(ctx_.self(), seq_++), 0, {}}.encode(inner);
    ctx_.send(target == kNobody ? target_ : target,
              kv::make_envelope(key, inner.bytes()));
  }

  static constexpr NodeId kNobody = ~NodeId{0};
  std::uint64_t updates_done = 0;
  std::unordered_map<std::string, std::uint64_t> reads;

 private:
  net::Context& ctx_;
  NodeId target_;
  std::uint64_t seq_ = 0;
};

template <typename Store, typename Factory>
void receive_side_first_equals_send_side_first(Factory make_store) {
  sim::Simulator sim(17);
  const std::vector<NodeId> replicas{0, 1, 2};
  for (int i = 0; i < 3; ++i)
    sim.add_node(
        [&](net::Context& ctx) { return make_store(ctx, replicas); });
  const NodeId client_id = sim.add_node([](net::Context& ctx) {
    return std::make_unique<CountClient>(ctx, 0);
  });
  auto& client = sim.endpoint_as<CountClient>(client_id);

  // Direction 1 (receive-side first on replicas 1 and 2): the client's
  // envelope creates the instance on replica 0; the protocol's own messages
  // create it on the peers.
  client.update("recv-first");
  // Direction 2 (send-side first on replica 1): materialize the key locally
  // before any message for it ever arrives, then drive the same traffic.
  sim.run_for(1 * kMillisecond);
  sim.endpoint_as<Store>(1).replica_for("send-first");
  client.update("send-first");
  sim.run_for(2 * kSecond);
  EXPECT_EQ(client.updates_done, 2u);

  // Both keys exist on every replica regardless of which direction created
  // them, and both report the same count through any replica.
  for (const NodeId replica : replicas) {
    EXPECT_TRUE(sim.endpoint_as<Store>(replica).has_key("recv-first"))
        << "replica " << replica;
    EXPECT_TRUE(sim.endpoint_as<Store>(replica).has_key("send-first"))
        << "replica " << replica;
    EXPECT_EQ(sim.endpoint_as<Store>(replica).key_count(), 2u);
  }
  client.query("recv-first", 1);
  client.query("send-first", 2);
  sim.run_for(2 * kSecond);
  ASSERT_TRUE(client.reads.count("recv-first"));
  ASSERT_TRUE(client.reads.count("send-first"));
  EXPECT_EQ(client.reads["recv-first"], 1u);
  EXPECT_EQ(client.reads["send-first"], 1u);
}

TEST(SharedCreatePath, CrdtReceiveSideFirstEqualsSendSideFirst) {
  receive_side_first_equals_send_side_first<CrdtStore>(
      [](net::Context& ctx, const std::vector<NodeId>& replicas) {
        return std::make_unique<CrdtStore>(ctx, replicas,
                                           core::ProtocolConfig{},
                                           core::gcounter_ops(), GCounter{},
                                           kv::ShardOptions{4});
      });
}

TEST(SharedCreatePath, PaxosReceiveSideFirstEqualsSendSideFirst) {
  receive_side_first_equals_send_side_first<PaxosStore>(
      [](net::Context& ctx, const std::vector<NodeId>& replicas) {
        return std::make_unique<PaxosStore>(ctx, replicas,
                                            paxos::PaxosConfig{},
                                            kv::ShardOptions{4});
      });
}

TEST(SharedCreatePath, RaftReceiveSideFirstEqualsSendSideFirst) {
  receive_side_first_equals_send_side_first<RaftStore>(
      [](net::Context& ctx, const std::vector<NodeId>& replicas) {
        return std::make_unique<RaftStore>(ctx, replicas, raft::RaftConfig{},
                                           kv::ShardOptions{4});
      });
}

// ---- eviction + churn (the ASan proof) ----------------------------------

// Create / evict / recreate 10^4 keys on a single-replica store while
// holding every round's envelope buffers (the "Payload spans" a transport
// would still own) across the evictions. Under ASan this proves:
//   * eviction destroys instances into the arena without leaving armed
//     timers behind (their dtors cancel them — a stale timer would fire
//     into recycled memory),
//   * arena reuse never hands out memory something still points into,
//   * held message buffers are never invalidated by eviction.
// The arena must stop growing after the first round: steady-state churn is
// pure free-list reuse.
template <typename Store, typename Factory>
void churn_keys_through_store(Factory make_store, int rounds, int keys) {
  sim::Simulator sim(23);
  const std::vector<NodeId> replicas{0};
  sim.add_node([&](net::Context& ctx) { return make_store(ctx, replicas); });
  const NodeId client_id = sim.add_node([](net::Context& ctx) {
    return std::make_unique<CountClient>(ctx, 0);
  });
  auto& store = sim.endpoint_as<Store>(0);
  auto& client = sim.endpoint_as<CountClient>(client_id);

  std::vector<Bytes> held_envelopes;  // survive across eviction rounds
  std::size_t reserved_after_first_round = 0;
  for (int round = 0; round < rounds; ++round) {
    for (int k = 0; k < keys; ++k) {
      const std::string key = "churn" + std::to_string(k);
      client.update(key);
      if (k % 997 == 0) {
        Encoder inner;
        rsm::ClientQuery{make_request_id(99, static_cast<std::uint64_t>(k)),
                         0,
                         {}}
            .encode(inner);
        held_envelopes.push_back(kv::make_envelope(key, inner.bytes()));
      }
      // Keep the event queue bounded: drain in slices.
      if (k % 512 == 511) sim.run_for(5 * kMillisecond);
    }
    sim.run_for(200 * kMillisecond);
    EXPECT_EQ(store.key_count(), static_cast<std::size_t>(keys))
        << "round " << round;
    const auto mem = store.memory_stats();
    EXPECT_GT(mem.bytes_per_key(), 0.0);
    for (int k = 0; k < keys; ++k)
      EXPECT_TRUE(store.evict("churn" + std::to_string(k)));
    EXPECT_EQ(store.key_count(), 0u);
    // Everything went back: no instance bytes may remain live in any arena.
    EXPECT_EQ(store.memory_stats().arena_live_bytes, 0u) << "round " << round;
    // Timers of evicted instances must be gone, not pending: running the
    // simulation after a full evict must not touch recycled memory (ASan
    // turns a violation into a crash here).
    sim.run_for(50 * kMillisecond);
    if (round == 0)
      reserved_after_first_round = store.memory_stats().arena_reserved_bytes;
    else
      EXPECT_EQ(store.memory_stats().arena_reserved_bytes,
                reserved_after_first_round)
          << "round " << round << ": churn must reuse, not grow";
  }
  // The held buffers stayed intact through every evict/recreate cycle.
  for (const Bytes& envelope : held_envelopes) {
    kv::EnvelopeView env;
    ASSERT_TRUE(kv::peek_envelope(envelope, env));
    EXPECT_EQ(env.key_hash, kv::fnv1a(env.key));
  }
  EXPECT_GT(client.updates_done, 0u);
}

TEST(KeyChurn, CrdtCreateEvictRecreateTenThousandKeys) {
  churn_keys_through_store<CrdtStore>(
      [](net::Context& ctx, const std::vector<NodeId>& replicas) {
        return std::make_unique<CrdtStore>(ctx, replicas,
                                           core::ProtocolConfig{},
                                           core::gcounter_ops(), GCounter{},
                                           kv::ShardOptions{8});
      },
      /*rounds=*/3, /*keys=*/10000);
}

TEST(KeyChurn, PaxosCreateEvictRecreateTenThousandKeys) {
  churn_keys_through_store<PaxosStore>(
      [](net::Context& ctx, const std::vector<NodeId>& replicas) {
        // Heartbeats on: every created key arms leader machinery, so every
        // eviction must cancel live timers (the dangerous path).
        return std::make_unique<PaxosStore>(ctx, replicas,
                                            paxos::PaxosConfig{},
                                            kv::ShardOptions{8});
      },
      /*rounds=*/3, /*keys=*/10000);
}

TEST(KeyChurn, RaftCreateEvictRecreateTenThousandKeys) {
  churn_keys_through_store<RaftStore>(
      [](net::Context& ctx, const std::vector<NodeId>& replicas) {
        return std::make_unique<RaftStore>(ctx, replicas, raft::RaftConfig{},
                                           kv::ShardOptions{8});
      },
      /*rounds=*/3, /*keys=*/10000);
}

// Eviction mid-protocol on a replicated cluster: evict every key on one
// replica while its peers still hold state and timers referencing it by
// node id, touch the keys again (recreating the instances through the
// receive-side path), and demand the counts survive — the evicted replica
// rejoins each key via the protocol's own catch-up.
template <typename Store, typename Factory>
void evict_and_rejoin(Factory make_store) {
  sim::Simulator sim(31);
  const std::vector<NodeId> replicas{0, 1, 2};
  for (int i = 0; i < 3; ++i)
    sim.add_node(
        [&](net::Context& ctx) { return make_store(ctx, replicas); });
  const NodeId client_id = sim.add_node([](net::Context& ctx) {
    return std::make_unique<CountClient>(ctx, 1);
  });
  auto& client = sim.endpoint_as<CountClient>(client_id);
  const int kKeys = 50;
  for (int k = 0; k < kKeys; ++k)
    client.update("rejoin" + std::to_string(k));
  sim.run_for(2 * kSecond);
  ASSERT_EQ(client.updates_done, static_cast<std::uint64_t>(kKeys));

  // Drop replica 0's copy of every key (its logs, roles and timers die with
  // the instances; peers keep the committed state).
  for (int k = 0; k < kKeys; ++k)
    EXPECT_TRUE(sim.endpoint_as<Store>(0).evict("rejoin" + std::to_string(k)));
  EXPECT_EQ(sim.endpoint_as<Store>(0).key_count(), 0u);
  sim.run_for(500 * kMillisecond);

  // Second increment per key, again via replica 1: replica 0 is recreated
  // on demand by protocol traffic and must catch back up.
  for (int k = 0; k < kKeys; ++k)
    client.update("rejoin" + std::to_string(k));
  sim.run_for(3 * kSecond);
  EXPECT_EQ(client.updates_done, static_cast<std::uint64_t>(2 * kKeys));
  for (int k = 0; k < kKeys; ++k)
    client.query("rejoin" + std::to_string(k));
  sim.run_for(2 * kSecond);
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "rejoin" + std::to_string(k);
    ASSERT_TRUE(client.reads.count(key)) << key;
    EXPECT_EQ(client.reads[key], 2u) << key;
  }
}

TEST(KeyChurn, CrdtEvictedReplicaRejoinsPerKey) {
  evict_and_rejoin<CrdtStore>(
      [](net::Context& ctx, const std::vector<NodeId>& replicas) {
        return std::make_unique<CrdtStore>(ctx, replicas,
                                           core::ProtocolConfig{},
                                           core::gcounter_ops(), GCounter{},
                                           kv::ShardOptions{4});
      });
}

TEST(KeyChurn, PaxosEvictedReplicaRejoinsPerKey) {
  evict_and_rejoin<PaxosStore>(
      [](net::Context& ctx, const std::vector<NodeId>& replicas) {
        return std::make_unique<PaxosStore>(ctx, replicas,
                                            paxos::PaxosConfig{},
                                            kv::ShardOptions{4});
      });
}

TEST(KeyChurn, RaftEvictedReplicaRejoinsPerKey) {
  evict_and_rejoin<RaftStore>(
      [](net::Context& ctx, const std::vector<NodeId>& replicas) {
        return std::make_unique<RaftStore>(ctx, replicas, raft::RaftConfig{},
                                           kv::ShardOptions{4});
      });
}

}  // namespace
}  // namespace lsr
