// Multi-Paxos baseline: leader-based replicated state machine over a
// replicated integer counter, architected like riak_ensemble (the system the
// paper's evaluation compares against):
//   * a stable leader sequences update commands into a command log
//     (pipelined phase-2 rounds, one slot per command);
//   * every log append pays a write cost (the paper's comparators write
//     their logs to a RAM disk);
//   * reads are served locally at the leader under a majority-renewed
//     *read lease* — no log entry, no quorum round;
//   * followers forward client commands to the leader;
//   * on leader failure the next replica runs phase 1 (view change),
//     adopting the highest accepted entries and any newer applied snapshot;
//   * the log is truncated by snapshotting the applied counter state.
//
// Everything runs on a single execution lane — the single peer FSM of the
// real system, and the leader bottleneck the paper attributes to it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/types.h"
#include "net/context.h"
#include "paxos/messages.h"

namespace lsr::paxos {

struct PaxosConfig {
  TimeNs heartbeat_interval = 1 * kMillisecond;
  // Lease = last majority-acknowledged heartbeat + this duration. Must stay
  // below failover_timeout or a deposed leader could serve stale reads.
  TimeNs lease_duration = 5 * kMillisecond;
  // A follower that saw no leader traffic for this long starts a view
  // change; staggered by replica rank to avoid duelling candidates. Large
  // relative to the heartbeat so queueing delay under load cannot trigger
  // spurious view changes.
  TimeNs failover_timeout = 100 * kMillisecond;
  TimeNs failover_stagger = 50 * kMillisecond;
  // Service cost per log append (RAM-disk write of the comparators).
  TimeNs log_write_cost = 10 * kMicrosecond;
  // Extra FSM bookkeeping per client command at the leader (lease checks,
  // state transitions of the peer FSM).
  TimeNs fsm_cost = 5 * kMicrosecond;
  // Log tail kept after applying, for follower catch-up without snapshots.
  std::uint64_t log_keep_tail = 1024;
  // Idle-key demotion: after this many consecutive heartbeat intervals with
  // no client activity and nothing uncommitted, the leader sends a farewell
  // heartbeat (park flag), stops heartbeating and lets its lease lapse;
  // followers cancel their failover timers. Any later command re-arms the
  // machinery. 0 = never park (the single-key deployments' default — only
  // keyed multi-key hosts want background traffic scaled to the active set).
  std::uint32_t idle_demote_intervals = 0;
};

struct PaxosStats {
  std::uint64_t updates_done = 0;
  std::uint64_t reads_done = 0;
  std::uint64_t reads_leased = 0;      // served under a valid lease
  std::uint64_t reads_deferred = 0;    // had to wait for lease/apply
  std::uint64_t forwards = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t log_appends = 0;
  std::uint64_t peak_log_entries = 0;  // high-water mark (log growth)
  std::uint64_t catchups_served = 0;
  std::uint64_t accept_retransmits = 0;  // stalled-slot Accept re-broadcasts
  std::uint64_t idle_parks = 0;    // lease/heartbeat machinery parked (idle)
  std::uint64_t idle_unparks = 0;  // re-armed by traffic after a park
};

class MultiPaxosReplica final : public net::Endpoint {
 public:
  using Config = PaxosConfig;
  using Stats = PaxosStats;

  MultiPaxosReplica(net::Context& ctx, std::vector<NodeId> replicas,
                    PaxosConfig config = {});
  // Eviction safety: keyed stores destroy per-key replicas while the host
  // context lives on; armed timers would fire into recycled memory.
  ~MultiPaxosReplica() override;

  void on_start() override;
  void on_recover() override;
  void on_message(NodeId from, ByteSpan data) override;
  // Span form for multiplexing hosts (the keyed KV store) that deliver the
  // payload in place out of a shard envelope.
  void on_message(NodeId from, const std::uint8_t* data, std::size_t size);

  bool is_leader() const { return leading_; }
  // True while idle demotion holds this replica's per-key timers canceled
  // (leader: heartbeat/lease stopped; follower: failover watchdog off).
  bool is_parked() const { return parked_; }
  std::int64_t value() const { return value_; }
  std::uint64_t applied_index() const { return applied_index_; }
  std::uint64_t commit_index() const { return commit_index_; }
  const PaxosStats& stats() const { return stats_; }

 private:
  struct PendingRead {
    NodeId client = 0;
    RequestId request = 0;
    std::uint64_t needed_index = 0;
  };

  std::size_t quorum() const { return replicas_.size() / 2 + 1; }
  std::size_t rank() const;
  void broadcast(const Bytes& data);

  // Client command handling (possibly forwarded).
  void handle_client_update(NodeId client, RequestId request,
                            std::int64_t amount);
  void handle_client_query(NodeId client, RequestId request);
  void drain_pending_client_messages();

  // Leader side.
  void propose(Command command);
  void on_accepted(NodeId from, const Accepted& msg);
  void maybe_commit(std::uint64_t slot);
  void retransmit_stalled_accepts();
  void send_heartbeat();
  void park_leader();
  void park_follower();
  void wake_if_parked();
  void on_heartbeat_ack(NodeId from, const HeartbeatAck& msg);
  bool lease_valid() const;
  void serve_read(const PendingRead& read);
  void drain_reads();

  // Acceptor side.
  void on_prepare(NodeId from, const Prepare& msg);
  void on_accept(NodeId from, const Accept& msg);
  void on_heartbeat(NodeId from, const Heartbeat& msg);

  // View change.
  void start_view_change();
  void on_promise(NodeId from, const Promise& msg);
  void on_prepare_nack(const PrepareNack& msg);
  void arm_failover_timer();
  void leader_contact();

  // Log / state machine.
  void try_apply();
  void truncate_log();
  void adopt_snapshot(std::int64_t value, std::uint64_t applied,
                      const std::vector<std::pair<NodeId, RequestId>>& sessions);
  void on_catchup_request(NodeId from, const CatchupRequest& msg);
  void on_catchup(const Catchup& msg);
  void request_catchup();

  net::Context& ctx_;
  std::vector<NodeId> replicas_;
  PaxosConfig config_;

  // Durable-equivalent state (survives crash-recovery).
  Ballot promised_;
  std::map<std::uint64_t, LogEntry> log_;  // slot -> entry (sparse)
  std::int64_t value_ = 0;                 // applied counter state
  std::uint64_t applied_index_ = 0;
  std::uint64_t commit_index_ = 0;
  // Per-client session (last applied update request id): replicated with
  // the snapshot so retried updates apply at most once.
  std::map<NodeId, RequestId> sessions_;

  // Leader state.
  bool leading_ = false;
  Ballot ballot_;  // our ballot when leading / campaigning
  std::uint64_t next_slot_ = 1;
  std::map<std::uint64_t, std::set<NodeId>> slot_acks_;
  std::uint64_t heartbeat_sequence_ = 0;
  std::map<std::uint64_t, TimeNs> heartbeat_sent_;
  std::map<std::uint64_t, std::set<NodeId>> heartbeat_acks_;
  TimeNs lease_until_ = 0;
  std::vector<PendingRead> pending_reads_;
  net::TimerId heartbeat_timer_ = net::kInvalidTimer;
  // Commit progress watermark for loss recovery: when the commit index sits
  // still across consecutive heartbeats while uncommitted slots exist, their
  // Accepts were probably lost and are re-broadcast.
  std::uint64_t commit_at_last_heartbeat_ = 0;
  int stalled_heartbeats_ = 0;

  // Idle demotion (config.idle_demote_intervals > 0): the leader counts
  // heartbeat intervals in which no client command arrived and nothing was
  // left uncommitted; reaching the threshold parks the key (see
  // send_heartbeat / wake_if_parked).
  bool parked_ = false;
  std::uint64_t activity_ = 0;               // client commands handled
  std::uint64_t activity_at_heartbeat_ = 0;  // watermark at the last beat
  std::uint32_t idle_heartbeats_ = 0;

  // Candidate state.
  bool campaigning_ = false;
  std::set<NodeId> promises_;
  std::map<std::uint64_t, LogEntry> promised_entries_;
  std::int64_t best_snapshot_value_ = 0;
  std::uint64_t best_snapshot_applied_ = 0;
  std::vector<std::pair<NodeId, RequestId>> best_snapshot_sessions_;
  std::uint64_t promised_commit_ = 0;

  // Follower state.
  NodeId leader_hint_ = kNoLeader;
  TimeNs last_leader_contact_ = 0;
  net::TimerId failover_timer_ = net::kInvalidTimer;
  // Vector, not deque: libstdc++'s deque eagerly allocates ~576 B even when
  // empty, which a million-key host pays per instance. Drain is all-or-
  // nothing, so FIFO-by-index is free.
  std::vector<std::pair<NodeId, Bytes>> pending_client_;

  PaxosStats stats_;

  static constexpr NodeId kNoLeader = ~NodeId{0};
};

}  // namespace lsr::paxos
