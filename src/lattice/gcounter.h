// Grow-only counter (paper Algorithm 1): one non-negative slot per replica,
// join = element-wise max, value = sum of slots. This is the CRDT the paper's
// entire evaluation replicates.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/wire.h"

namespace lsr::lattice {

class GCounter {
 public:
  GCounter() = default;
  explicit GCounter(std::size_t replicas) : slots_(replicas, 0) {}

  // update(): increment this replica's slot (Algorithm 1, lines 10-12).
  // Inflationary by construction.
  void increment(std::size_t replica, std::uint64_t amount = 1) {
    ensure_slot(replica);
    slots_[replica] += amount;
  }

  // query(): the counter's value (Algorithm 1, lines 8-9).
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto slot : slots_) sum += slot;
    return sum;
  }

  std::uint64_t slot(std::size_t replica) const {
    return replica < slots_.size() ? slots_[replica] : 0;
  }

  std::size_t slot_count() const { return slots_.size(); }

  // merge(): element-wise max (Algorithm 1, lines 5-6).
  void join(const GCounter& other) {
    if (other.slots_.size() > slots_.size()) slots_.resize(other.slots_.size(), 0);
    for (std::size_t i = 0; i < other.slots_.size(); ++i)
      slots_[i] = std::max(slots_[i], other.slots_[i]);
  }

  // compare(): element-wise <= (Algorithm 1, lines 3-4).
  bool leq(const GCounter& other) const {
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (slots_[i] > (i < other.slots_.size() ? other.slots_[i] : 0))
        return false;
    return true;
  }

  bool operator==(const GCounter& other) const {
    return leq(other) && other.leq(*this);
  }

  void encode(Encoder& enc) const {
    enc.put_container(slots_, [](Encoder& e, std::uint64_t v) { e.put_u64(v); });
  }

  static GCounter decode(Decoder& dec) {
    GCounter counter;
    dec.get_container([&counter](Decoder& d) {
      counter.slots_.push_back(d.get_u64());
    });
    return counter;
  }

  // Approximate in-memory footprint; used by the overhead benchmark to verify
  // the paper's "memory overhead of a single counter per replica" claim.
  std::size_t byte_size() const { return slots_.size() * sizeof(std::uint64_t); }

 private:
  void ensure_slot(std::size_t replica) {
    if (replica >= slots_.size()) slots_.resize(replica + 1, 0);
  }

  std::vector<std::uint64_t> slots_;
};

}  // namespace lsr::lattice
