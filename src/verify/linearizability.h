// Linearizability checkers for replicated-counter histories.
//
// check_counter_linearizable: fast O(n log n) checker for histories of unit
// increments and reads. It verifies the interval conditions that a
// linearization must satisfy:
//   (1) for every read r:  #increments completed before r's invocation
//                           <= value(r) <=
//                          #increments invoked before r's response;
//   (2) for reads r1, r2 with r1.response < r2.invoke: value(r1) <= value(r2).
// For unit increments these conditions are also sufficient (the object is a
// monotone counter; a witness linearization can always be assembled by
// placing each read after exactly value(r) increments). The exhaustive
// checker below cross-validates this on small histories in the test suite.
//
// WGChecker: exhaustive Wing&Gong-style search with memoization on the set
// of linearized operations; exponential worst case, intended for histories
// of up to ~20 operations.
#pragma once

#include <cstdint>
#include <string>

#include "verify/history.h"

namespace lsr::verify {

struct CheckResult {
  bool linearizable = true;
  std::string explanation;  // human-readable violation description
};

// Fast checker: requires all increments to have amount == 1.
CheckResult check_counter_linearizable(const History& history);

// Exhaustive checker (any amounts). History size must be <= 62 ops; runtime
// is exponential, use for small histories only.
CheckResult check_counter_linearizable_exhaustive(const History& history);

}  // namespace lsr::verify
