// Unit tests of the acceptor transition table — Algorithm 2, right column,
// rule by rule.
#include "core/acceptor.h"

#include <gtest/gtest.h>

#include "lattice/gcounter.h"
#include "lattice/semilattice.h"

namespace lsr::core {
namespace {

using lattice::GCounter;

GCounter counter_with(std::size_t slot, std::uint64_t value) {
  GCounter counter(3);
  counter.increment(slot, value);
  return counter;
}

TEST(Acceptor, InitialState) {
  Acceptor<GCounter> acceptor{GCounter(3)};
  EXPECT_EQ(acceptor.state().value(), 0u);
  EXPECT_EQ(acceptor.round().number, 0u);
  EXPECT_EQ(acceptor.round().id, Round::kInitId);
}

TEST(Acceptor, MergeJoinsAndMarksWrite) {
  Acceptor<GCounter> acceptor{GCounter(3)};
  const auto reply = acceptor.handle(Merge<GCounter>{7, counter_with(1, 5)});
  EXPECT_EQ(reply.op, 7u);
  EXPECT_EQ(acceptor.state().value(), 5u);
  EXPECT_EQ(acceptor.round().id, Round::kWriteId);  // line 34
  EXPECT_EQ(acceptor.round().number, 0u);           // number untouched
}

TEST(Acceptor, ApplyUpdateIsLocalMergeEquivalent) {
  Acceptor<GCounter> acceptor{GCounter(3)};
  const GCounter& result = acceptor.apply_update(
      [](GCounter& state) { state.increment(0, 3); });
  EXPECT_EQ(result.value(), 3u);
  EXPECT_EQ(acceptor.round().id, Round::kWriteId);  // line 30
}

TEST(Acceptor, IncrementalPrepareAlwaysAccepted) {
  Acceptor<GCounter> acceptor{GCounter(3)};
  // Even after many prepares, an incremental one bumps past the stored
  // number (line 39) and is acked.
  for (std::uint64_t i = 1; i <= 5; ++i) {
    const auto reply = acceptor.handle(Prepare<GCounter>{
        i, 1, incremental_round(9, i), std::nullopt});
    const auto* ack = std::get_if<Ack<GCounter>>(&reply);
    ASSERT_NE(ack, nullptr) << "iteration " << i;
    EXPECT_EQ(ack->round.number, i);  // grows by one each time
  }
}

TEST(Acceptor, FixedPrepareAcceptedOnlyAboveCurrentNumber) {
  Acceptor<GCounter> acceptor{GCounter(3)};
  // Raise the acceptor's round to 5.
  acceptor.handle(Prepare<GCounter>{1, 1, fixed_round(5, 2, 0), std::nullopt});
  // Equal number: rejected (strict > required, line 40).
  auto reply =
      acceptor.handle(Prepare<GCounter>{2, 1, fixed_round(5, 3, 1), std::nullopt});
  EXPECT_NE(std::get_if<Nack<GCounter>>(&reply), nullptr);
  // Lower number: rejected.
  reply =
      acceptor.handle(Prepare<GCounter>{3, 1, fixed_round(4, 3, 2), std::nullopt});
  EXPECT_NE(std::get_if<Nack<GCounter>>(&reply), nullptr);
  // Higher number: accepted and adopted.
  reply =
      acceptor.handle(Prepare<GCounter>{4, 1, fixed_round(6, 3, 3), std::nullopt});
  const auto* ack = std::get_if<Ack<GCounter>>(&reply);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(acceptor.round().number, 6u);
}

TEST(Acceptor, PrepareMergesCarriedState) {
  Acceptor<GCounter> acceptor{GCounter(3)};
  const auto reply = acceptor.handle(Prepare<GCounter>{
      1, 1, incremental_round(2, 0), counter_with(0, 9)});  // line 37
  const auto* ack = std::get_if<Ack<GCounter>>(&reply);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->state.value(), 9u);  // ACK carries the merged state
  EXPECT_EQ(acceptor.state().value(), 9u);
}

TEST(Acceptor, NackCarriesRoundAndState) {
  Acceptor<GCounter> acceptor{GCounter(3)};
  acceptor.handle(Merge<GCounter>{1, counter_with(2, 4)});
  acceptor.handle(Prepare<GCounter>{2, 1, fixed_round(8, 2, 0), std::nullopt});
  const auto reply =
      acceptor.handle(Prepare<GCounter>{3, 1, fixed_round(3, 4, 1), std::nullopt});
  const auto* nack = std::get_if<Nack<GCounter>>(&reply);
  ASSERT_NE(nack, nullptr);
  EXPECT_EQ(nack->round.number, 8u);      // acceptor's current round
  EXPECT_EQ(nack->state.value(), 4u);     // piggybacked payload for retries
}

TEST(Acceptor, VoteGrantedWhenRoundMatches) {
  Acceptor<GCounter> acceptor{GCounter(3)};
  const auto prep = acceptor.handle(Prepare<GCounter>{
      1, 1, incremental_round(2, 0), std::nullopt});
  const auto& ack = std::get<Ack<GCounter>>(prep);
  const auto reply = acceptor.handle(Vote<GCounter>{
      1, 1, ack.round, counter_with(0, 2)});
  const auto* voted = std::get_if<Voted<GCounter>>(&reply);
  ASSERT_NE(voted, nullptr);
  // Sect. 3.6 optimization: no state echoed by default.
  EXPECT_FALSE(voted->state.has_value());
  // Line 44: the proposal was merged regardless.
  EXPECT_EQ(acceptor.state().value(), 2u);
}

TEST(Acceptor, VoteDeniedAfterInterveningUpdate) {
  // The crux of linearizability (line 45 + lines 30/34): any state
  // modification between PREPARE and VOTE invalidates the vote.
  Acceptor<GCounter> acceptor{GCounter(3)};
  const auto prep = acceptor.handle(Prepare<GCounter>{
      1, 1, incremental_round(2, 0), std::nullopt});
  const auto& ack = std::get<Ack<GCounter>>(prep);
  acceptor.handle(Merge<GCounter>{9, counter_with(1, 1)});  // concurrent update
  const auto reply = acceptor.handle(Vote<GCounter>{
      1, 1, ack.round, counter_with(0, 2)});
  EXPECT_NE(std::get_if<Nack<GCounter>>(&reply), nullptr);
  // But the vote's state was still merged (line 44).
  EXPECT_EQ(acceptor.state().value(), 3u);
}

TEST(Acceptor, VoteDeniedAfterInterveningPrepare) {
  // Invariant I4: a later PREPARE raises the round, so the pending vote for
  // the earlier round must fail.
  Acceptor<GCounter> acceptor{GCounter(3)};
  const auto prep = acceptor.handle(Prepare<GCounter>{
      1, 1, incremental_round(2, 0), std::nullopt});
  const auto& ack = std::get<Ack<GCounter>>(prep);
  acceptor.handle(Prepare<GCounter>{2, 1, incremental_round(3, 1), std::nullopt});
  const auto reply = acceptor.handle(Vote<GCounter>{
      1, 1, ack.round, counter_with(0, 2)});
  EXPECT_NE(std::get_if<Nack<GCounter>>(&reply), nullptr);
}

TEST(Acceptor, StateGrowsMonotonically) {
  // Lemma 3.2: the payload state only ever grows, whatever the message mix.
  Acceptor<GCounter> acceptor{GCounter(3)};
  GCounter previous = acceptor.state();
  const auto check = [&] {
    EXPECT_TRUE(previous.leq(acceptor.state()));
    previous = acceptor.state();
  };
  acceptor.handle(Merge<GCounter>{1, counter_with(0, 3)});
  check();
  acceptor.handle(Prepare<GCounter>{2, 1, incremental_round(5, 0),
                                    counter_with(1, 1)});
  check();
  acceptor.handle(Vote<GCounter>{3, 1, Round{99, 1234}, counter_with(2, 7)});
  check();
  acceptor.apply_update([](GCounter& state) { state.increment(0, 1); });
  check();
}

TEST(Acceptor, VotedEchoesStateWhenConfigured) {
  ProtocolConfig config;
  config.state_in_voted = true;  // the unoptimized variant
  Acceptor<GCounter> acceptor{GCounter(3), &config};
  const auto prep = acceptor.handle(Prepare<GCounter>{
      1, 1, incremental_round(2, 0), std::nullopt});
  const auto& ack = std::get<Ack<GCounter>>(prep);
  const auto reply = acceptor.handle(Vote<GCounter>{
      1, 1, ack.round, counter_with(0, 2)});
  const auto* voted = std::get_if<Voted<GCounter>>(&reply);
  ASSERT_NE(voted, nullptr);
  ASSERT_TRUE(voted->state.has_value());
  EXPECT_EQ(voted->state->value(), 2u);
}

TEST(Acceptor, StatsCountTransitions) {
  Acceptor<GCounter> acceptor{GCounter(3)};
  acceptor.handle(Merge<GCounter>{1, counter_with(0, 1)});
  acceptor.handle(Prepare<GCounter>{2, 1, incremental_round(3, 0), std::nullopt});
  acceptor.handle(Prepare<GCounter>{3, 1, fixed_round(0, 3, 1), std::nullopt});
  EXPECT_EQ(acceptor.stats().merges, 1u);
  EXPECT_EQ(acceptor.stats().prepare_acks, 1u);
  EXPECT_EQ(acceptor.stats().prepare_nacks, 1u);
}

}  // namespace
}  // namespace lsr::core
