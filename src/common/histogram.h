// Log-bucketed value histogram (HDR-histogram style) for latency recording.
//
// Values below 64 are bucketed exactly; larger values use 32 sub-buckets per
// octave (~3 % relative precision), ample for nanosecond latencies. Memory is
// a fixed ~15 KiB per histogram. percentile() uses the nearest-rank value
// interpolated linearly within its bucket, clamped to the observed
// [min, max] — single-valued histograms report exactly that value, and
// sub-bucket-width distributions are not inflated to the bucket edge.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace lsr {

class Histogram {
 public:
  Histogram();

  void record(std::int64_t value);
  void record_n(std::int64_t value, std::uint64_t count);

  // Merges another histogram's counts into this one.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const;  // 0 when empty
  std::int64_t max() const;  // 0 when empty
  double mean() const;       // 0 when empty

  // Value at the given quantile in [0,1] (nearest rank, interpolated within
  // its bucket, clamped to [min(), max()]). Returns 0 when empty.
  std::int64_t percentile(double quantile) const;

  void clear();

 private:
  static constexpr int kUnitBuckets = 64;    // exact buckets for [0, 64)
  static constexpr int kSubBuckets = 32;     // per octave above that
  static constexpr int kOctaves = 58;        // covers values up to 2^63
  static constexpr int kNumBuckets = kUnitBuckets + kOctaves * kSubBuckets;

  static int bucket_index(std::int64_t value);
  static std::int64_t bucket_lower(int index);
  static std::int64_t bucket_upper(int index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace lsr
