// Bump-pointer chunk arena with size-bucketed reuse — the allocation engine
// behind the keyed stores' per-key protocol instances.
//
// Why not plain `new` per key: a million-key replica makes a million tiny,
// heap-scattered allocations per store (instance + map node + key string),
// each paying malloc header overhead and fragmenting the heap, and a key
// churn (evict + recreate) round-trips the global allocator every time. The
// arena carves instances out of large chunks instead and recycles freed
// blocks through per-size free lists, so steady-state churn allocates
// nothing.
//
// Concurrency contract: NONE. One arena belongs to one shard, and a shard is
// a serial execution domain (one lane / executor group) — the same ownership
// discipline the shard's instance map already relies on. Never share an
// arena across shards or threads.
//
// Blocks handed out by `allocate` stay valid until `deallocate` (or the
// arena's destruction); freed blocks are reused for later allocations of the
// same size class, so dangling pointers into freed blocks are real
// use-after-frees — the keyed churn tests run this under ASan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace lsr {

class Arena {
 public:
  struct Stats {
    std::size_t chunks = 0;          // chunk allocations taken from the heap
    std::size_t bytes_reserved = 0;  // total chunk bytes owned by the arena
    std::size_t bytes_live = 0;      // bytes in blocks currently handed out
    std::uint64_t allocations = 0;   // total allocate() calls
    std::uint64_t reuses = 0;        // allocations served from a free list
  };

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < kMinAlign ? kMinAlign : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (auto& chunk : chunks_) ::operator delete(chunk.base);
  }

  // Alignment is capped at kMinAlign (16): every block start is 16-aligned,
  // which covers every type the keyed stores place here.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    LSR_EXPECTS(align <= kMinAlign);
    const std::size_t rounded = round_up(size);
    ++stats_.allocations;
    stats_.bytes_live += rounded;
    const auto free_it = free_lists_.find(rounded);
    if (free_it != free_lists_.end() && free_it->second != nullptr) {
      FreeBlock* block = free_it->second;
      free_it->second = block->next;
      ++stats_.reuses;
      return block;
    }
    if (chunks_.empty() || chunks_.back().used + rounded > chunks_.back().size) {
      const std::size_t chunk_size =
          rounded > chunk_bytes_ ? rounded : chunk_bytes_;
      chunks_.push_back(Chunk{
          static_cast<std::uint8_t*>(::operator new(chunk_size)), 0,
          chunk_size});
      ++stats_.chunks;
      stats_.bytes_reserved += chunk_size;
    }
    Chunk& chunk = chunks_.back();
    void* out = chunk.base + chunk.used;
    chunk.used += rounded;
    return out;
  }

  // Returns a block to its size class. `size` must be the original request.
  void deallocate(void* p, std::size_t size) noexcept {
    if (p == nullptr) return;
    const std::size_t rounded = round_up(size);
    stats_.bytes_live -= rounded;
    auto* block = static_cast<FreeBlock*>(p);
    auto& head = free_lists_[rounded];
    block->next = head;
    head = block;
  }

  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(alignof(T) <= kMinAlign);
    void* mem = allocate(sizeof(T), alignof(T));
    try {
      return new (mem) T(std::forward<Args>(args)...);
    } catch (...) {
      deallocate(mem, sizeof(T));
      throw;
    }
  }

  template <typename T>
  void destroy(T* p) noexcept {
    if (p == nullptr) return;
    p->~T();
    deallocate(p, sizeof(T));
  }

  const Stats& stats() const { return stats_; }

  static constexpr std::size_t kMinAlign = 16;
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

 private:
  struct FreeBlock {
    FreeBlock* next = nullptr;
  };

  struct Chunk {
    std::uint8_t* base = nullptr;
    std::size_t used = 0;
    std::size_t size = 0;
  };

  // Every block is at least one free-list node big and 16-aligned, so a
  // freed block can always hold its own list link.
  static constexpr std::size_t round_up(std::size_t size) {
    const std::size_t floor = size < sizeof(FreeBlock) ? sizeof(FreeBlock) : size;
    return (floor + kMinAlign - 1) & ~(kMinAlign - 1);
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  // size class (rounded bytes) -> singly linked free list threaded through
  // the freed blocks themselves. A store hosts a handful of size classes
  // (one instance type + key reps), so the map stays tiny.
  std::unordered_map<std::size_t, FreeBlock*> free_lists_;
  Stats stats_;
};

}  // namespace lsr
