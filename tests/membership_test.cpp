// net::Membership parsing: the address table crosses a process boundary
// (a --peers flag or peers file written by an operator or harness), so the
// parser must reject every malformed form with a diagnostic instead of
// asserting or wrapping — and never crash on arbitrary bytes (the fuzz
// case below mirrors the envelope-fuzz style of shard_test).
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "net/membership.h"

namespace lsr::net {
namespace {

TEST(MembershipTest, ParsesPeersSpec) {
  Membership m;
  std::string error;
  ASSERT_TRUE(Membership::parse_peers(
      "0=127.0.0.1:7400,1=127.0.0.1:7401,2=10.1.2.3:65535", m, &error))
      << error;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.address(0).host, "127.0.0.1");
  EXPECT_EQ(m.address(0).port, 7400);
  EXPECT_EQ(m.address(2).host, "10.1.2.3");
  EXPECT_EQ(m.address(2).port, 65535);
}

TEST(MembershipTest, EntriesMayArriveInAnyOrderAndWithWhitespace) {
  Membership m;
  std::string error;
  ASSERT_TRUE(Membership::parse_peers(
      " 2=127.0.0.1:9 , 0=127.0.0.1:7 ,\t1=127.0.0.1:8 ", m, &error))
      << error;
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.address(0).port, 7);
  EXPECT_EQ(m.address(1).port, 8);
  EXPECT_EQ(m.address(2).port, 9);
}

TEST(MembershipTest, RejectsDuplicateNodeIds) {
  Membership m;
  std::string error;
  EXPECT_FALSE(Membership::parse_peers(
      "0=127.0.0.1:7400,1=127.0.0.1:7401,1=127.0.0.1:7402", m, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(MembershipTest, RejectsGapsInTheIdSpace) {
  // 2 entries covering ids {0, 2}: id 1 would be an undialable phantom.
  Membership m;
  std::string error;
  EXPECT_FALSE(
      Membership::parse_peers("0=127.0.0.1:7400,2=127.0.0.1:7402", m, &error));
  EXPECT_NE(error.find("gap"), std::string::npos) << error;
}

TEST(MembershipTest, RejectsMalformedHostPort) {
  Membership m;
  const char* bad[] = {
      "0=127.0.0.1",          // no port
      "0=127.0.0.1:",         // empty port
      "0=127.0.0.1:0",        // port 0 is not dialable
      "0=127.0.0.1:65536",    // port overflow
      "0=127.0.0.1:99999999999999999999",  // u64 overflow
      "0=127.0.0.1:74x0",     // trailing junk in the port
      "0=127.0.0.1:-7400",    // signs rejected
      "0=:7400",              // empty host
      "0=example.com:7400",   // no DNS: IPv4 only
      "0=256.0.0.1:7400",     // not a dotted quad
      "0=::1:7400",           // IPv6 unsupported
      "127.0.0.1:7400",       // missing id=
      "x=127.0.0.1:7400",     // non-numeric id
      "0:127.0.0.1=7400",     // separators swapped
      "",                     // empty spec
      " , ,",                 // only empty entries
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(Membership::parse_peers(spec, m, &error))
        << "accepted: " << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(MembershipTest, FileTextSupportsCommentsAndBlankLines) {
  Membership m;
  std::string error;
  ASSERT_TRUE(Membership::parse_file_text(
      "# lsr cluster\n"
      "\n"
      "0=127.0.0.1:7400\n"
      "1=127.0.0.1:7401\r\n"  // CRLF tolerated
      "  # trailing comment\n"
      "2=127.0.0.1:7402\n",
      m, &error))
      << error;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.address(1).port, 7401);
}

TEST(MembershipTest, PeersStringAndFileTextRoundTrip) {
  Membership m;
  std::string error;
  ASSERT_TRUE(Membership::parse_peers(
      "0=127.0.0.1:7400,1=0.0.0.0:7401,2=192.168.7.1:12345", m, &error))
      << error;

  Membership from_peers;
  ASSERT_TRUE(Membership::parse_peers(m.to_peers_string(), from_peers, &error))
      << error;
  EXPECT_EQ(from_peers, m);

  // The two textual forms describe the same table.
  Membership from_file;
  ASSERT_TRUE(Membership::parse_file_text(m.to_file_text(), from_file, &error))
      << error;
  EXPECT_EQ(from_file, m);
}

TEST(MembershipTest, FindDetectsSelfAddress) {
  Membership m;
  ASSERT_TRUE(
      Membership::parse_peers("0=127.0.0.1:7400,1=127.0.0.1:7401", m));
  ASSERT_TRUE(m.find("127.0.0.1", 7401).has_value());
  EXPECT_EQ(*m.find("127.0.0.1", 7401), 1u);
  EXPECT_FALSE(m.find("127.0.0.1", 7402).has_value());
  EXPECT_FALSE(m.find("127.0.0.2", 7401).has_value());
}

TEST(MembershipTest, LoopbackFactoryMatchesParsedForm) {
  const Membership built = Membership::loopback(3, 7400);
  Membership parsed;
  ASSERT_TRUE(Membership::parse_peers(
      "0=127.0.0.1:7400,1=127.0.0.1:7401,2=127.0.0.1:7402", parsed));
  EXPECT_EQ(built, parsed);
}

TEST(MembershipTest, ReplicaDirectivesParseInBothForms) {
  Membership m;
  std::string error;
  ASSERT_TRUE(Membership::parse_peers(
      "0=127.0.0.1:7400,1=127.0.0.1:7401,2=127.0.0.1:7402,replicas=2", m,
      &error))
      << error;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.replicas(), 2u);
  EXPECT_TRUE(m.has_replica_directive());
  EXPECT_EQ(m.prev_replicas(), 0u);

  ASSERT_TRUE(Membership::parse_file_text(
      "# grow in flight\n"
      "0=127.0.0.1:7400\n"
      "1=127.0.0.1:7401\n"
      "2=127.0.0.1:7402\n"
      "replicas=3\n"
      "prev-replicas=2\n",
      m, &error))
      << error;
  EXPECT_EQ(m.replicas(), 3u);
  EXPECT_EQ(m.prev_replicas(), 2u);
}

TEST(MembershipTest, ReplicasDefaultsToTableSizeWithoutDirective) {
  Membership m;
  ASSERT_TRUE(Membership::parse_peers("0=127.0.0.1:7400,1=127.0.0.1:7401", m));
  EXPECT_FALSE(m.has_replica_directive());
  EXPECT_EQ(m.replicas(), 2u);
  EXPECT_EQ(m.prev_replicas(), 0u);
}

TEST(MembershipTest, RejectsMalformedDirectives) {
  Membership m;
  const char* bad[] = {
      "0=127.0.0.1:7400,replicas=0",             // zero replicas
      "0=127.0.0.1:7400,replicas=2",             // exceeds table size
      "0=127.0.0.1:7400,replicas=x",             // non-numeric
      "0=127.0.0.1:7400,replicas=",              // empty value
      "0=127.0.0.1:7400,replicas=1,replicas=1",  // duplicate directive
      "0=127.0.0.1:7400,prev-replicas=2",        // prev exceeds table size
      "replicas=1",                              // directive with no entries
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(Membership::parse_peers(spec, m, &error))
        << "accepted: " << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(MembershipTest, DirectivesRoundTripAndCompareEqual) {
  Membership m;
  std::string error;
  ASSERT_TRUE(Membership::parse_peers(
      "0=127.0.0.1:7400,1=127.0.0.1:7401,2=127.0.0.1:7402,"
      "replicas=3,prev-replicas=2",
      m, &error))
      << error;

  Membership from_peers;
  ASSERT_TRUE(Membership::parse_peers(m.to_peers_string(), from_peers, &error))
      << error;
  EXPECT_EQ(from_peers, m);

  Membership from_file;
  ASSERT_TRUE(Membership::parse_file_text(m.to_file_text(), from_file, &error))
      << error;
  EXPECT_EQ(from_file, m);

  // Same addresses, different directive: not the same membership.
  Membership other;
  ASSERT_TRUE(Membership::parse_peers(
      "0=127.0.0.1:7400,1=127.0.0.1:7401,2=127.0.0.1:7402,replicas=3", other));
  EXPECT_FALSE(other == m);
}

TEST(MembershipTest, DirectiveSettersEmitTheSameText) {
  Membership m = Membership::loopback(5, 7400);
  m.set_replicas(5);
  m.set_prev_replicas(3);
  Membership parsed;
  std::string error;
  ASSERT_TRUE(Membership::parse_file_text(m.to_file_text(), parsed, &error))
      << error;
  EXPECT_EQ(parsed, m);
  EXPECT_EQ(parsed.replicas(), 5u);
  EXPECT_EQ(parsed.prev_replicas(), 3u);

  m.set_prev_replicas(0);  // reconfiguration finished
  ASSERT_TRUE(Membership::parse_file_text(m.to_file_text(), parsed, &error));
  EXPECT_EQ(parsed.prev_replicas(), 0u);
}

TEST(MembershipTest, DiffReportsAddedRemovedAndChanged) {
  const Membership three = Membership::loopback(3, 7400);
  const Membership five = Membership::loopback(5, 7400);

  EXPECT_TRUE(diff_membership(three, three).empty());

  const MembershipDiff grown = diff_membership(three, five);
  EXPECT_EQ(grown.added, (std::vector<NodeId>{3, 4}));
  EXPECT_TRUE(grown.removed.empty());
  EXPECT_TRUE(grown.changed.empty());

  const MembershipDiff shrunk = diff_membership(five, three);
  EXPECT_TRUE(shrunk.added.empty());
  EXPECT_EQ(shrunk.removed, (std::vector<NodeId>{3, 4}));
  EXPECT_TRUE(shrunk.changed.empty());

  Membership moved = Membership::loopback(3, 7400);
  std::string error;
  ASSERT_TRUE(Membership::parse_peers(
      "0=127.0.0.1:7400,1=127.0.0.1:9999,2=127.0.0.1:7402", moved, &error))
      << error;
  const MembershipDiff rebound = diff_membership(three, moved);
  EXPECT_TRUE(rebound.added.empty());
  EXPECT_TRUE(rebound.removed.empty());
  EXPECT_EQ(rebound.changed, (std::vector<NodeId>{1}));
}

// Envelope-fuzz style: mutations of a valid spec and raw random bytes must
// either parse or fail with a diagnostic — never crash, never accept a
// table that violates the density/address invariants.
TEST(MembershipTest, FuzzedSpecsNeverCrashAndNeverAcceptInvalidTables) {
  Rng rng(20260726);
  const std::string valid = "0=127.0.0.1:7400,1=127.0.0.1:7401,2=10.0.0.2:81";
  for (int round = 0; round < 3000; ++round) {
    std::string spec = valid;
    const int mode = static_cast<int>(rng.next_below(3));
    if (mode == 0) {
      spec.resize(rng.next_below(spec.size() + 1));  // truncate
    } else if (mode == 1) {
      const std::size_t at = rng.next_below(spec.size());
      spec[at] = static_cast<char>(rng.next_u64() & 0xFF);  // mutate one byte
    } else {
      spec.assign(rng.next_below(48), '\0');
      for (auto& c : spec) c = static_cast<char>(rng.next_u64() & 0xFF);
    }
    Membership m;
    std::string error;
    if (Membership::parse_peers(spec, m, &error)) {
      // Whatever parsed must satisfy the invariants the transport relies on.
      ASSERT_GT(m.size(), 0u);
      for (NodeId id = 0; id < m.size(); ++id) {
        EXPECT_FALSE(m.address(id).host.empty());
        EXPECT_GT(m.address(id).port, 0);
      }
      // ...and must round-trip to an equal table.
      Membership again;
      ASSERT_TRUE(Membership::parse_peers(m.to_peers_string(), again));
      EXPECT_EQ(again, m);
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
}

}  // namespace
}  // namespace lsr::net
