// Per-key net::Context decorator shared by the keyed stores (the CRDT
// ShardedStore and the log-baseline KeyedLogStore): every outgoing message
// of one key's protocol instance is prefixed with the key's shard envelope
// (hash precomputed once at instance creation), and instance-relative timer
// lanes are translated onto the lane block the hosting store assigned to the
// key's shard. The wrapped instance never learns it is multiplexed.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "common/types.h"
#include "kv/shard.h"
#include "net/context.h"

namespace lsr::kv {

class KeyedContext final : public net::Context {
 public:
  KeyedContext(net::Context& inner, std::string key, std::uint32_t key_hash,
               int base_lane)
      : inner_(inner),
        key_(std::move(key)),
        key_hash_(key_hash),
        base_lane_(base_lane) {}

  NodeId self() const override { return inner_.self(); }
  TimeNs now() const override { return inner_.now(); }
  void send(NodeId dst, Bytes data) override {
    inner_.send(dst, make_envelope(key_hash_, key_, data));
  }
  net::TimerId set_timer(TimeNs delay, int lane,
                         std::function<void()> fn) override {
    return inner_.set_timer(delay, base_lane_ + lane, std::move(fn));
  }
  void cancel_timer(net::TimerId id) override { inner_.cancel_timer(id); }
  void consume(TimeNs cost) override { inner_.consume(cost); }

 private:
  net::Context& inner_;
  std::string key_;
  std::uint32_t key_hash_;
  int base_lane_;
};

}  // namespace lsr::kv
