#include "verify/process_cluster.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "bench/workload.h"
#include "common/assert.h"
#include "common/logging.h"
#include "net/tcp.h"
#include "verify/history.h"
#include "verify/kv_recording_client.h"
#include "verify/linearizability.h"

namespace lsr::verify {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

void sleep_ns(TimeNs delay) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
}

// Binds `count` ephemeral loopback listeners at once (so no two picks
// collide with each other), reads the assigned ports back, then closes
// them. A racing process could still grab a port before the node binds it;
// the spawned node would abort and start() report it — loud, not silent.
std::vector<std::uint16_t> pick_free_ports(std::size_t count) {
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) break;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    socklen_t len = sizeof addr;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      ::close(fd);
      break;
    }
    fds.push_back(fd);
    ports.push_back(ntohs(addr.sin_port));
  }
  for (const int fd : fds) ::close(fd);
  if (ports.size() != count) ports.clear();
  return ports;
}

bool tcp_probe(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  const bool up =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  ::close(fd);
  return up;
}

}  // namespace

std::string ProcessCluster::default_node_binary() {
  if (const char* env = std::getenv("LSR_NODE_BIN");
      env != nullptr && env[0] != '\0')
    return env;
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
  if (n <= 0) return "example_lsr_node";
  self[n] = '\0';
  std::string path(self);
  const std::size_t slash = path.rfind('/');
  return (slash == std::string::npos ? std::string()
                                     : path.substr(0, slash + 1)) +
         "example_lsr_node";
}

ProcessCluster::ProcessCluster(ProcessClusterOptions options)
    : options_(std::move(options)) {
  if (options_.node_binary.empty())
    options_.node_binary = default_node_binary();
  pids_.assign(options_.replicas, -1);
}

ProcessCluster::~ProcessCluster() { stop_all(); }

NodeId ProcessCluster::client_id(std::size_t slot) const {
  LSR_EXPECTS(slot < options_.client_slots);
  return static_cast<NodeId>(options_.replicas + slot);
}

pid_t ProcessCluster::pid(NodeId replica) const {
  LSR_EXPECTS(replica < pids_.size());
  return pids_[replica];
}

bool ProcessCluster::running(NodeId replica) const {
  return replica < pids_.size() && pids_[replica] > 0;
}

bool ProcessCluster::spawn(NodeId replica, std::string* error) {
  // argv is materialized before the fork: nothing between fork and exec may
  // allocate (the child shares the parent's heap state).
  std::vector<std::string> args{
      options_.node_binary,
      "--id",       std::to_string(replica),
      "--peers",    membership_.to_peers_string(),
      "--system",   options_.system,
      "--shards",   std::to_string(options_.shards),
      "--replicas", std::to_string(options_.replicas),
  };
  if (options_.read_leases && options_.system == "crdt") {
    args.push_back("--read-leases");
    args.push_back("--lease-ttl-ms");
    args.push_back(std::to_string(options_.lease_ttl_ms));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t child = ::fork();
  if (child < 0) {
    set_error(error, std::string("fork failed: ") + std::strerror(errno));
    return false;
  }
  if (child == 0) {
    ::execv(argv[0], argv.data());
    // Exec failed; nothing sane to do in the forked child but vanish with a
    // recognizable status.
    ::_exit(127);
  }
  pids_[replica] = child;
  return true;
}

bool ProcessCluster::start(std::string* error) {
  LSR_EXPECTS(!started_);
  if (::access(options_.node_binary.c_str(), X_OK) != 0) {
    set_error(error, "node binary '" + options_.node_binary +
                         "' is not an executable (build example_lsr_node, or "
                         "point LSR_NODE_BIN at it)");
    return false;
  }
  const auto ports =
      pick_free_ports(options_.replicas + options_.client_slots);
  if (ports.empty()) {
    set_error(error, "could not reserve loopback ports");
    return false;
  }
  membership_ = net::Membership();
  for (std::size_t i = 0; i < ports.size(); ++i)
    membership_.add(static_cast<NodeId>(i), {"127.0.0.1", ports[i]});
  started_ = true;
  for (NodeId replica = 0; replica < options_.replicas; ++replica)
    if (!spawn(replica, error)) {
      stop_all();
      return false;
    }
  for (NodeId replica = 0; replica < options_.replicas; ++replica) {
    if (wait_listening(replica, options_.ready_timeout)) continue;
    set_error(error, "replica " + std::to_string(replica) +
                         " never started listening on port " +
                         std::to_string(membership_.address(replica).port));
    stop_all();
    return false;
  }
  return true;
}

bool ProcessCluster::wait_listening(NodeId member, TimeNs timeout) const {
  LSR_EXPECTS(membership_.has(member));
  const auto& address = membership_.address(member);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout);
  while (std::chrono::steady_clock::now() < deadline) {
    if (tcp_probe(address.host, address.port)) return true;
    sleep_ns(10 * kMillisecond);
  }
  return tcp_probe(address.host, address.port);
}

bool ProcessCluster::kill_replica(NodeId replica) {
  LSR_EXPECTS(replica < pids_.size());
  if (pids_[replica] <= 0) return false;
  // The real thing: no handler runs, queued frames, session tables and the
  // whole CRDT payload die with the process.
  ::kill(pids_[replica], SIGKILL);
  ::waitpid(pids_[replica], nullptr, 0);
  pids_[replica] = -1;
  return true;
}

bool ProcessCluster::restart_replica(NodeId replica, std::string* error) {
  LSR_EXPECTS(replica < pids_.size());
  LSR_EXPECTS(started_);
  if (pids_[replica] > 0) {
    set_error(error, "replica " + std::to_string(replica) + " still running");
    return false;
  }
  if (!spawn(replica, error)) return false;
  if (!wait_listening(replica, options_.ready_timeout)) {
    set_error(error, "restarted replica " + std::to_string(replica) +
                         " never started listening");
    return false;
  }
  return true;
}

void ProcessCluster::stop_all() {
  for (const pid_t pid : pids_)
    if (pid > 0) ::kill(pid, SIGTERM);
  // Bounded graceful reap, then force.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    while (pids_[i] > 0) {
      const pid_t reaped = ::waitpid(pids_[i], nullptr, WNOHANG);
      if (reaped == pids_[i] || reaped < 0) {
        pids_[i] = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(pids_[i], SIGKILL);
        ::waitpid(pids_[i], nullptr, 0);
        pids_[i] = -1;
        break;
      }
      sleep_ns(10 * kMillisecond);
    }
  }
}

ProcessKillRestartResult run_process_kill_restart(
    const ProcessKillRestartOptions& options) {
  using Clock = std::chrono::steady_clock;
  ProcessKillRestartResult result;
  LSR_EXPECTS(options.replicas >= 1 && options.clients >= 1);
  LSR_EXPECTS(!options.kill || options.replicas >= 3);  // need a live quorum

  // Everything the client endpoints point into outlives the harness cluster
  // (declared first => destroyed last), as in run_tcp_kill_reconnect.
  std::vector<std::string> keys;
  for (int k = 0; k < options.keys; ++k)
    keys.push_back("proc" + std::to_string(k));
  const bench::Zipfian zipf(static_cast<std::uint64_t>(options.keys),
                            options.zipf_theta);
  std::vector<std::unique_ptr<KeyedHistory>> histories;

  ProcessClusterOptions cluster_options;
  cluster_options.node_binary = options.node_binary;
  cluster_options.replicas = options.replicas;
  cluster_options.client_slots = options.clients;
  cluster_options.system = options.system;
  cluster_options.shards = options.shards;
  cluster_options.read_leases = options.read_leases;
  cluster_options.lease_ttl_ms = options.lease_ttl_ms;
  ProcessCluster processes(cluster_options);
  std::string error;
  if (!processes.start(&error)) {
    result.explanation = error;
    return result;
  }
  result.started = true;

  // The workload clients live in *this* process but speak to the replicas
  // exclusively over their membership addresses — the same bytes a remote
  // host would send.
  const NodeId victim = static_cast<NodeId>(options.replicas - 1);
  const std::size_t safe_targets =
      options.kill ? options.replicas - 1 : options.replicas;
  const bool victim_reader = options.kill && options.victim_reader;
  net::TcpCluster harness(processes.membership());
  std::vector<NodeId> client_ids;
  for (std::size_t c = 0; c < options.clients; ++c) {
    histories.push_back(std::make_unique<KeyedHistory>());
    const NodeId id = processes.client_id(c);
    client_ids.push_back(id);
    // victim_reader: client 0 reads (only) at the victim so the kill lands
    // on a replica that is actively serving — with read leases on, a live
    // leaseholder. Its retransmissions bridge the downtime.
    const NodeId target = victim_reader && c == 0
                              ? victim
                              : static_cast<NodeId>(c % safe_targets);
    const double ratio =
        victim_reader && c == 0 ? 1.0 : options.read_ratio;
    harness.add_node(id, [&, c, target, ratio](net::Context& ctx) {
      auto client = std::make_unique<KvRecordingClient>(
          ctx, target, &keys, ratio, options.seed * 31 + c,
          histories[c].get(), options.ops_per_client, &zipf);
      // Same-replica retransmission: sound on every system (the CRDT
      // proposers dedup per replica, the baselines replicate sessions) and
      // required here — a kill tears real connections, and unacked requests
      // riding them are genuinely lost.
      client->enable_retry(50 * kMillisecond, /*failover_after=*/0,
                           static_cast<NodeId>(options.replicas));
      return client;
    });
  }
  const auto t0 = Clock::now();
  harness.start();

  const auto completed_sum = [&] {
    std::uint64_t sum = 0;
    for (const NodeId id : client_ids)
      sum += harness.endpoint_as<KvRecordingClient>(id).completed();
    return sum;
  };
  if (options.kill) {
    // Fire at kill_after — or as soon as a quarter of the ops completed,
    // whichever comes first — so the SIGKILL provably lands mid-workload on
    // machines of any speed (a fault that misses the workload would make
    // the whole scenario vacuous; ok() rejects that outcome).
    const std::uint64_t total_ops =
        options.clients * options.ops_per_client;
    const auto kill_deadline =
        t0 + std::chrono::nanoseconds(options.kill_after);
    while (Clock::now() < kill_deadline && completed_sum() < total_ops / 4)
      sleep_ns(2 * kMillisecond);
    result.completed_at_kill = completed_sum();
    result.fault_overlapped_workload = result.completed_at_kill < total_ops;
    processes.kill_replica(victim);
    if (!result.fault_overlapped_workload && result.explanation.empty())
      result.explanation =
          "workload finished before the fault landed (raise ops_per_client)";
    sleep_ns(options.downtime);
    std::string restart_error;
    if (!processes.restart_replica(victim, &restart_error)) {
      result.explanation = restart_error;
    } else {
      result.restarted_serving = true;
    }
  }

  const auto all_done = [&] {
    for (const NodeId id : client_ids)
      if (harness.endpoint_as<KvRecordingClient>(id).completed() <
          options.ops_per_client)
        return false;
    return true;
  };
  for (int waited = 0; waited < options.deadline_ms && !all_done();
       waited += 10)
    sleep_ns(10 * kMillisecond);
  result.completed = all_done();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  harness.stop();
  processes.stop_all();
  if (!result.completed) {
    if (result.explanation.empty())
      result.explanation = "clients did not finish within the deadline";
    return result;
  }

  KeyedHistory merged;
  std::uint64_t completed_ops = 0;
  for (std::size_t c = 0; c < options.clients; ++c) {
    // A still-inflight update is filed as possibly-applied (response +inf);
    // with completed == ops_per_client there is none, but the idiom keeps a
    // deadline-relaxed caller sound.
    harness.endpoint_as<KvRecordingClient>(client_ids[c]).flush_pending();
    completed_ops += options.ops_per_client;
    merged.merge_from(*histories[c]);
  }
  result.key_count = merged.key_count();
  result.total_ops = merged.total_ops();
  result.throughput_per_sec =
      result.wall_seconds > 0
          ? static_cast<double>(completed_ops) / result.wall_seconds
          : 0.0;
  result.linearizable = true;
  for (const auto& [key, history] : merged.histories()) {
    const auto check = check_counter_linearizable(history);
    if (!check.linearizable) {
      result.linearizable = false;
      if (result.explanation.empty())
        result.explanation = "key " + key + ": " + check.explanation;
    }
  }
  return result;
}

}  // namespace lsr::verify
