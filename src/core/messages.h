// Wire messages of the CRDT Paxos protocol (paper Algorithm 2) plus the
// request-tracking fields the paper prescribes in prose: every message
// belongs to a protocol instance (`op`, proposer-local id) and, for query
// messages, an attempt number so stale replies of earlier attempts are
// discarded ("proposers implement a mechanism to keep track of ongoing
// requests and can differentiate to which request an incoming message
// belongs").
#pragma once

#include <cstdint>
#include <optional>
#include <variant>

#include "common/types.h"
#include "common/wire.h"
#include "core/round.h"
#include "core/session_lattice.h"
#include "lattice/semilattice.h"

namespace lsr::core {

enum class MsgTag : std::uint8_t {
  kMerge = 16,
  kMerged = 17,
  kPrepare = 18,
  kAck = 19,
  kVote = 20,
  kVoted = 21,
  kNack = 22,
  kLeaseRecall = 23,
  kLeaseRelease = 24,
  kSessionProbe = 25,
  kSessionProbeReply = 26,
};

// <MERGE, s> — update propagation (Alg. 2 line 4). With
// ProtocolConfig::replicate_sessions the message additionally carries the
// sender's session-marker lattice; state and sessions are joined atomically
// at the receiving acceptor, which is what keeps "marker => update is in the
// adjacent state" true everywhere (see core/session_lattice.h). An empty
// table costs one wire byte.
template <lattice::SerializableLattice L>
struct Merge {
  std::uint64_t op = 0;
  L state;
  SessionLattice sessions;

  Merge() = default;
  Merge(std::uint64_t op_id, L payload, SessionLattice marks = {})
      : op(op_id), state(std::move(payload)), sessions(std::move(marks)) {}

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(MsgTag::kMerge));
    enc.put_u64(op);
    state.encode(enc);
    sessions.encode(enc);
  }
  static Merge decode(Decoder& dec) {
    Merge msg;
    msg.op = dec.get_u64();
    msg.state = L::decode(dec);
    msg.sessions = SessionLattice::decode(dec);
    return msg;
  }
};

// <MERGED> — update acknowledgment (line 35).
struct Merged {
  std::uint64_t op = 0;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(MsgTag::kMerged));
    enc.put_u64(op);
  }
  static Merged decode(Decoder& dec) {
    Merged msg;
    msg.op = dec.get_u64();
    return msg;
  }
};

// <PREPARE, r, s> — phase-1 announcement (line 10). The payload state is
// optional (Sect. 3.6: proposers need not ship s0). With read leases on, a
// PREPARE may additionally request an epoch-numbered lease from each
// acceptor: the learn this PREPARE belongs to doubles as the lease grant
// round (see core/lease.h).
template <lattice::SerializableLattice L>
struct Prepare {
  std::uint64_t op = 0;
  std::uint32_t attempt = 0;
  Round round;  // round.number may be kIncrementalNumber (⊥)
  std::optional<L> state;
  bool lease_request = false;
  std::uint32_t lease_epoch = 0;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(MsgTag::kPrepare));
    enc.put_u64(op);
    enc.put_u32(attempt);
    round.encode(enc);
    enc.put_bool(state.has_value());
    if (state) state->encode(enc);
    enc.put_bool(lease_request);
    if (lease_request) enc.put_u32(lease_epoch);
  }
  static Prepare decode(Decoder& dec) {
    Prepare msg;
    msg.op = dec.get_u64();
    msg.attempt = dec.get_u32();
    msg.round = Round::decode(dec);
    if (dec.get_bool()) msg.state = L::decode(dec);
    msg.lease_request = dec.get_bool();
    if (msg.lease_request) msg.lease_epoch = dec.get_u32();
    return msg;
  }
};

// <ACK, r, s> — phase-1 acceptance carrying the acceptor's round and payload
// state (line 42). lease_granted answers a PREPARE's lease_request: true iff
// the acceptor's grantor recorded a lease for the proposer.
template <lattice::SerializableLattice L>
struct Ack {
  std::uint64_t op = 0;
  std::uint32_t attempt = 0;
  Round round;
  L state;
  bool lease_granted = false;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(MsgTag::kAck));
    enc.put_u64(op);
    enc.put_u32(attempt);
    round.encode(enc);
    state.encode(enc);
    enc.put_bool(lease_granted);
  }
  static Ack decode(Decoder& dec) {
    Ack msg;
    msg.op = dec.get_u64();
    msg.attempt = dec.get_u32();
    msg.round = Round::decode(dec);
    msg.state = L::decode(dec);
    msg.lease_granted = dec.get_bool();
    return msg;
  }
};

// <VOTE, r, s'> — phase-2 proposal (line 17).
template <lattice::SerializableLattice L>
struct Vote {
  std::uint64_t op = 0;
  std::uint32_t attempt = 0;
  Round round;
  L state;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(MsgTag::kVote));
    enc.put_u64(op);
    enc.put_u32(attempt);
    round.encode(enc);
    state.encode(enc);
  }
  static Vote decode(Decoder& dec) {
    Vote msg;
    msg.op = dec.get_u64();
    msg.attempt = dec.get_u32();
    msg.round = Round::decode(dec);
    msg.state = L::decode(dec);
    return msg;
  }
};

// <VOTED> — phase-2 acceptance (line 47). Payload state is optional: the
// optimized protocol omits it because the proposer remembers its proposal.
template <lattice::SerializableLattice L>
struct Voted {
  std::uint64_t op = 0;
  std::uint32_t attempt = 0;
  std::optional<L> state;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(MsgTag::kVoted));
    enc.put_u64(op);
    enc.put_u32(attempt);
    enc.put_bool(state.has_value());
    if (state) state->encode(enc);
  }
  static Voted decode(Decoder& dec) {
    Voted msg;
    msg.op = dec.get_u64();
    msg.attempt = dec.get_u32();
    if (dec.get_bool()) msg.state = L::decode(dec);
    return msg;
  }
};

// <NACK, r, s> — denial (described in prose, Sect. 3.2 "Retrying Requests"):
// carries the acceptor's current round and payload state so the proposer can
// retry with the LUB of everything it has seen.
template <lattice::SerializableLattice L>
struct Nack {
  std::uint64_t op = 0;
  std::uint32_t attempt = 0;
  Round round;
  L state;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(MsgTag::kNack));
    enc.put_u64(op);
    enc.put_u32(attempt);
    round.encode(enc);
    state.encode(enc);
  }
  static Nack decode(Decoder& dec) {
    Nack msg;
    msg.op = dec.get_u64();
    msg.attempt = dec.get_u32();
    msg.round = Round::decode(dec);
    msg.state = L::decode(dec);
    return msg;
  }
};

// <LEASE-RECALL, e> — grantor → holder: a write is deferred behind the
// holder's lease with epoch e; the holder must revoke and broadcast a
// LEASE-RELEASE. Idempotent (re-sent on every deferred MERGE arrival).
struct LeaseRecall {
  std::uint32_t epoch = 0;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(MsgTag::kLeaseRecall));
    enc.put_u32(epoch);
  }
  static LeaseRecall decode(Decoder& dec) {
    LeaseRecall msg;
    msg.epoch = dec.get_u32();
    return msg;
  }
};

// <LEASE-RELEASE, e> — holder → all acceptors: every lease the sender holds
// with epoch <= e is revoked; deferred MERGED acks behind it may flow.
struct LeaseRelease {
  std::uint32_t epoch = 0;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(MsgTag::kLeaseRelease));
    enc.put_u32(epoch);
  }
  static LeaseRelease decode(Decoder& dec) {
    LeaseRelease msg;
    msg.epoch = dec.get_u32();
    return msg;
  }
};

// <SESSION-PROBE, client, counter> — proposer → every acceptor, sent before
// re-applying a client update that arrived flagged as a retry but is unknown
// to both the local volatile session table and the local replicated markers
// (i.e. the client failed over from a crashed replica). Asks: "is this
// update already applied in your payload state?"
struct SessionProbe {
  std::uint64_t op = 0;
  NodeId client = 0;
  std::uint64_t counter = 0;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(MsgTag::kSessionProbe));
    enc.put_u64(op);
    enc.put_u32(client);
    enc.put_u64(counter);
  }
  static SessionProbe decode(Decoder& dec) {
    SessionProbe msg;
    msg.op = dec.get_u64();
    msg.client = dec.get_u32();
    msg.counter = dec.get_u64();
    return msg;
  }
};

// <SESSION-PROBE-REPLY, found, s, sessions> — acceptor → probing proposer.
// When found, the reply carries the acceptor's payload state and marker
// table so the prober can absorb both (atomically, preserving the marker
// invariant) and then re-MERGE instead of re-applying.
template <lattice::SerializableLattice L>
struct SessionProbeReply {
  std::uint64_t op = 0;
  bool found = false;
  std::optional<L> state;
  SessionLattice sessions;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(MsgTag::kSessionProbeReply));
    enc.put_u64(op);
    enc.put_bool(found);
    if (found) {
      state->encode(enc);
      sessions.encode(enc);
    }
  }
  static SessionProbeReply decode(Decoder& dec) {
    SessionProbeReply msg;
    msg.op = dec.get_u64();
    msg.found = dec.get_bool();
    if (msg.found) {
      msg.state = L::decode(dec);
      msg.sessions = SessionLattice::decode(dec);
    }
    return msg;
  }
};

template <lattice::SerializableLattice L>
using Message =
    std::variant<Merge<L>, Merged, Prepare<L>, Ack<L>, Vote<L>, Voted<L>,
                 Nack<L>, LeaseRecall, LeaseRelease, SessionProbe,
                 SessionProbeReply<L>>;

template <lattice::SerializableLattice L>
Bytes encode_message(const Message<L>& msg) {
  Encoder enc;
  std::visit([&enc](const auto& m) { m.encode(enc); }, msg);
  return std::move(enc).take();
}

// Decodes a protocol message. The tag has *not* been consumed yet.
template <lattice::SerializableLattice L>
Message<L> decode_message(Decoder& dec) {
  const auto tag = static_cast<MsgTag>(dec.get_u8());
  switch (tag) {
    case MsgTag::kMerge: return Merge<L>::decode(dec);
    case MsgTag::kMerged: return Merged::decode(dec);
    case MsgTag::kPrepare: return Prepare<L>::decode(dec);
    case MsgTag::kAck: return Ack<L>::decode(dec);
    case MsgTag::kVote: return Vote<L>::decode(dec);
    case MsgTag::kVoted: return Voted<L>::decode(dec);
    case MsgTag::kNack: return Nack<L>::decode(dec);
    case MsgTag::kLeaseRecall: return LeaseRecall::decode(dec);
    case MsgTag::kLeaseRelease: return LeaseRelease::decode(dec);
    case MsgTag::kSessionProbe: return SessionProbe::decode(dec);
    case MsgTag::kSessionProbeReply: return SessionProbeReply<L>::decode(dec);
  }
  throw WireError("unknown protocol message tag");
}

// True when the tag addresses the acceptor role (PREPARE/VOTE/MERGE, plus
// LEASE-RELEASE which targets the co-located grantor), false for
// proposer-bound replies (LEASE-RECALL targets the holder, i.e. the
// proposer). Used for execution-lane classification.
inline bool is_acceptor_bound(std::uint8_t tag) {
  return tag == static_cast<std::uint8_t>(MsgTag::kMerge) ||
         tag == static_cast<std::uint8_t>(MsgTag::kPrepare) ||
         tag == static_cast<std::uint8_t>(MsgTag::kVote) ||
         tag == static_cast<std::uint8_t>(MsgTag::kLeaseRelease) ||
         tag == static_cast<std::uint8_t>(MsgTag::kSessionProbe);
}

}  // namespace lsr::core
