#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace lsr {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.95), 0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.percentile(0.5), 1000);
  EXPECT_EQ(h.percentile(1.0), 1000);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (int i = 0; i < 64; ++i) h.record(i);
  EXPECT_EQ(h.percentile(0.0), 0);
  // Small values (< 64) fall into exact unit buckets.
  EXPECT_EQ(h.percentile(0.5), 31);
  EXPECT_EQ(h.max(), 63);
}

TEST(Histogram, NegativeClampedToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, PercentileWithinRelativeError) {
  // The log-bucketed histogram guarantees a bounded relative error; verify
  // against exact order statistics on random data.
  Rng rng(7);
  std::vector<std::int64_t> values;
  Histogram h;
  for (int i = 0; i < 100000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(50'000'000));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const auto exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const auto approx = h.percentile(q);
    if (exact > 0) {
      const double rel =
          std::abs(static_cast<double>(approx - exact)) / exact;
      EXPECT_LT(rel, 0.05) << "q=" << q << " exact=" << exact
                           << " approx=" << approx;
    }
  }
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Rng rng(11);
  Histogram separate_a;
  Histogram separate_b;
  Histogram combined;
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(1'000'000));
    combined.record(v);
    (i % 2 == 0 ? separate_a : separate_b).record(v);
  }
  separate_a.merge(separate_b);
  EXPECT_EQ(separate_a.count(), combined.count());
  EXPECT_EQ(separate_a.min(), combined.min());
  EXPECT_EQ(separate_a.max(), combined.max());
  EXPECT_EQ(separate_a.percentile(0.95), combined.percentile(0.95));
  EXPECT_DOUBLE_EQ(separate_a.mean(), combined.mean());
}

TEST(Histogram, RecordNCountsBulk) {
  Histogram h;
  h.record_n(500, 10);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.percentile(0.5), 500);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(123);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.99), 0);
}

TEST(Histogram, LargeValuesDoNotOverflow) {
  Histogram h;
  h.record(std::int64_t{1} << 61);
  EXPECT_GE(h.max(), std::int64_t{1} << 61);
  EXPECT_GT(h.percentile(1.0), 0);
}

TEST(Histogram, MedianOfEvenCountUsesLowerRank) {
  // Nearest-rank median of {10, 20} is the 1st order statistic; the old
  // "+ 0.5 then truncate" rank rounding reported the 2nd.
  Histogram h;
  h.record(10);
  h.record(20);
  EXPECT_EQ(h.percentile(0.5), 10);
}

TEST(Histogram, BoundaryRanksAreExact) {
  // Every decile of 10 distinct unit-bucket values must land on the exact
  // nearest-rank order statistic — in particular q * count landing a few
  // ulps above an integer (0.3 * 10) must not bump the rank.
  Histogram h;
  for (int v = 1; v <= 10; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.1), 1);
  EXPECT_EQ(h.percentile(0.3), 3);
  EXPECT_EQ(h.percentile(0.5), 5);
  EXPECT_EQ(h.percentile(0.9), 9);
  EXPECT_EQ(h.percentile(1.0), 10);
}

TEST(Histogram, InterpolatesWithinBucket) {
  // A sub-bucket-width distribution (every sample identical, well inside an
  // octave bucket) must report the recorded value at every quantile, not
  // the bucket's upper edge — exactly the shape lease-served reads produce.
  Histogram h;
  h.record_n(15'000, 100000);
  EXPECT_EQ(h.percentile(0.5), 15'000);
  EXPECT_EQ(h.percentile(0.99), 15'000);
  EXPECT_EQ(h.percentile(1.0), 15'000);
}

TEST(Histogram, InterpolationStaysNearExactOrderStatistics) {
  // Two-point distribution across distinct octave buckets: quantiles stay
  // within bucket precision (~3 %) of the exact order statistics instead of
  // jumping to upper edges.
  Histogram h;
  h.record_n(10'000, 50);
  h.record_n(20'000, 50);
  EXPECT_GE(h.percentile(0.99), 19'000);
  EXPECT_LE(h.percentile(0.99), 20'000);  // clamped to max
  EXPECT_LE(h.percentile(0.5), 10'000 + 10'000 / 16);
  EXPECT_GE(h.percentile(0.5), 10'000 - 10'000 / 16);
}

TEST(Histogram, MonotonePercentiles) {
  Rng rng(13);
  Histogram h;
  for (int i = 0; i < 5000; ++i)
    h.record(static_cast<std::int64_t>(rng.next_below(10'000'000)));
  std::int64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const auto p = h.percentile(q);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

}  // namespace
}  // namespace lsr
