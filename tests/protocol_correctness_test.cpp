// The central correctness suite: full client histories recorded over the
// deterministic simulator under many random schedules (seeds), message loss,
// duplication and reordering — then checked for counter linearizability.
// This replaces the paper's "protocol scheduler that enforces random
// interleavings of incoming messages".
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/ops.h"
#include "core/replica.h"
#include "lattice/gcounter.h"
#include "sim/simulator.h"
#include "verify/history.h"
#include "verify/linearizability.h"
#include "verify/recording_client.h"

namespace lsr {
namespace {

using lattice::GCounter;
using CounterReplica = core::Replica<GCounter>;

struct RunSpec {
  std::uint64_t seed = 1;
  std::size_t replicas = 3;
  std::size_t clients = 6;
  double read_ratio = 0.5;
  std::uint64_t ops_per_client = 40;
  double loss = 0.0;
  double duplication = 0.0;
  TimeNs batch_interval = 0;
  bool delta_updates = false;
};

verify::History run_and_record(const RunSpec& spec) {
  sim::NetworkConfig net;
  net.loss_probability = spec.loss;
  net.duplicate_probability = spec.duplication;
  net.lossy_node_limit = static_cast<NodeId>(spec.replicas);
  sim::Simulator sim(spec.seed, net);

  std::vector<NodeId> replica_ids(spec.replicas);
  for (std::size_t i = 0; i < spec.replicas; ++i)
    replica_ids[i] = static_cast<NodeId>(i);
  core::ProtocolConfig config;
  config.batch_interval = spec.batch_interval;
  config.delta_updates = spec.delta_updates;
  // Loss runs need snappy in-protocol retries to finish quickly.
  config.retry_timeout = 2 * kMillisecond;
  for (std::size_t i = 0; i < spec.replicas; ++i) {
    sim.add_node([&replica_ids, config](net::Context& ctx) {
      return std::make_unique<CounterReplica>(ctx, replica_ids, config,
                                              core::gcounter_ops());
    });
  }
  verify::History history;
  std::vector<NodeId> clients;
  for (std::size_t i = 0; i < spec.clients; ++i) {
    const NodeId target = replica_ids[i % spec.replicas];
    clients.push_back(sim.add_node([&, target, i](net::Context& ctx) {
      return std::make_unique<verify::RecordingClient>(
          ctx, target, spec.read_ratio, spec.seed * 131 + i, &history,
          spec.ops_per_client);
    }));
  }
  sim.run_until(60 * kSecond);
  // With batching the flush timer never dies; stop on the deadline instead
  // of running to quiescence and flush any still-pending op.
  for (const NodeId id : clients)
    sim.endpoint_as<verify::RecordingClient>(id).flush_pending();
  return history;
}

void expect_linearizable(const RunSpec& spec) {
  const verify::History history = run_and_record(spec);
  // All clients must have finished their scripts (liveness).
  EXPECT_GE(history.size(), spec.clients * spec.ops_per_client);
  const auto result = verify::check_counter_linearizable(history);
  EXPECT_TRUE(result.linearizable)
      << "seed " << spec.seed << ": " << result.explanation;
}

// ---- random schedules, fault-free ----

class ManySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ManySeeds, MixedWorkloadLinearizable) {
  RunSpec spec;
  spec.seed = GetParam();
  expect_linearizable(spec);
}

TEST_P(ManySeeds, UpdateHeavyLinearizable) {
  RunSpec spec;
  spec.seed = GetParam() + 1000;
  spec.read_ratio = 0.2;
  expect_linearizable(spec);
}

TEST_P(ManySeeds, WithBatchingLinearizable) {
  RunSpec spec;
  spec.seed = GetParam() + 2000;
  spec.batch_interval = 5 * kMillisecond;
  expect_linearizable(spec);
}

TEST_P(ManySeeds, FiveReplicasLinearizable) {
  RunSpec spec;
  spec.seed = GetParam() + 3000;
  spec.replicas = 5;
  spec.clients = 10;
  expect_linearizable(spec);
}

TEST_P(ManySeeds, DeltaUpdatesLinearizable) {
  // The delta-state extension must not affect any correctness property,
  // even with loss (delta retransmission is idempotent too).
  RunSpec spec;
  spec.seed = GetParam() + 4000;
  spec.delta_updates = true;
  spec.loss = 0.05;
  spec.ops_per_client = 25;
  expect_linearizable(spec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManySeeds, ::testing::Range<std::uint64_t>(1, 13));

// ---- adversarial networks ----

class LossySeeds
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(LossySeeds, LinearizableUnderLossAndDuplication) {
  RunSpec spec;
  spec.seed = std::get<0>(GetParam());
  spec.loss = std::get<1>(GetParam());
  spec.duplication = 0.05;
  spec.ops_per_client = 25;  // loss runs are slower; keep histories bounded
  expect_linearizable(spec);
}

INSTANTIATE_TEST_SUITE_P(
    LossGrid, LossySeeds,
    ::testing::Combine(::testing::Values<std::uint64_t>(21, 22, 23, 24),
                       ::testing::Values(0.01, 0.05, 0.15)));

// ---- exhaustive check on small histories ----

class SmallHistories : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmallHistories, ExhaustivelyLinearizable) {
  RunSpec spec;
  spec.seed = GetParam() + 5000;
  spec.clients = 2;
  spec.ops_per_client = 9;  // 18 ops: within Wing&Gong reach
  spec.read_ratio = 0.5;
  const verify::History history = run_and_record(spec);
  ASSERT_LE(history.size(), 62u);
  const auto exhaustive = verify::check_counter_linearizable_exhaustive(history);
  EXPECT_TRUE(exhaustive.linearizable) << exhaustive.explanation;
  // And the fast checker agrees.
  EXPECT_TRUE(verify::check_counter_linearizable(history).linearizable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallHistories,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- crash-recovery ----

TEST(ProtocolCrash, HistoriesStayLinearizableAcrossCrashAndRecovery) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::NetworkConfig net;
    net.lossy_node_limit = 3;
    sim::Simulator sim(seed, net);
    const std::vector<NodeId> replica_ids{0, 1, 2};
    for (std::size_t i = 0; i < 3; ++i) {
      sim.add_node([&replica_ids](net::Context& ctx) {
        return std::make_unique<CounterReplica>(
            ctx, replica_ids, core::ProtocolConfig{}, core::gcounter_ops());
      });
    }
    verify::History history;
    std::vector<NodeId> clients;
    for (std::size_t i = 0; i < 6; ++i) {
      clients.push_back(sim.add_node([&, i](net::Context& ctx) {
        return std::make_unique<verify::RecordingClient>(
            ctx, replica_ids[i % 3], 0.5, seed * 17 + i, &history, 60);
      }));
    }
    // Crash replica 2 mid-run and recover it later; its clients stall while
    // it is down (no client retries here — exactly-once would be violated).
    sim.call_at(40 * kMillisecond, [&sim] { sim.set_down(2, true); });
    sim.call_at(120 * kMillisecond, [&sim] { sim.set_down(2, false); });
    sim.run_until(10 * kSecond);
    for (const NodeId id : clients)
      sim.endpoint_as<verify::RecordingClient>(id).flush_pending();
    const auto result = verify::check_counter_linearizable(history);
    EXPECT_TRUE(result.linearizable)
        << "seed " << seed << ": " << result.explanation;
    EXPECT_GT(history.size(), 120u);  // the surviving clients made progress
  }
}

TEST(ProtocolCrash, RecoveredReplicaRetainsItsState) {
  // Crash-recovery model: internal state survives. After recovery the
  // replica still holds (at least) what it had merged before the crash.
  sim::Simulator sim(99);
  const std::vector<NodeId> replica_ids{0, 1, 2};
  for (std::size_t i = 0; i < 3; ++i) {
    sim.add_node([&replica_ids](net::Context& ctx) {
      return std::make_unique<CounterReplica>(
          ctx, replica_ids, core::ProtocolConfig{}, core::gcounter_ops());
    });
  }
  verify::History history;
  sim.add_node([&](net::Context& ctx) {
    return std::make_unique<verify::RecordingClient>(ctx, 0, 0.0, 7, &history,
                                                     30);
  });
  sim.run_for(100 * kMillisecond);
  const auto before =
      sim.endpoint_as<CounterReplica>(2).acceptor().state().value();
  EXPECT_GT(before, 0u);
  sim.set_down(2, true);
  sim.run_for(50 * kMillisecond);
  sim.set_down(2, false);
  sim.run_for(kMillisecond);
  EXPECT_GE(sim.endpoint_as<CounterReplica>(2).acceptor().state().value(),
            before);
}

// ---- partitions ----

TEST(ProtocolPartition, MinorityPartitionHealsAndStaysLinearizable) {
  for (std::uint64_t seed = 31; seed <= 34; ++seed) {
    sim::Simulator sim(seed);
    const std::vector<NodeId> replica_ids{0, 1, 2};
    core::ProtocolConfig config;
    config.retry_timeout = 2 * kMillisecond;
    for (std::size_t i = 0; i < 3; ++i) {
      sim.add_node([&replica_ids, config](net::Context& ctx) {
        return std::make_unique<CounterReplica>(ctx, replica_ids, config,
                                                core::gcounter_ops());
      });
    }
    verify::History history;
    std::vector<NodeId> clients;
    for (std::size_t i = 0; i < 4; ++i) {
      clients.push_back(sim.add_node([&, i](net::Context& ctx) {
        // Clients talk to the majority side (replicas 0 and 1).
        return std::make_unique<verify::RecordingClient>(
            ctx, replica_ids[i % 2], 0.5, seed * 13 + i, &history, 40);
      }));
    }
    // Cut replica 2 off for a while; the majority keeps serving.
    sim.call_at(30 * kMillisecond, [&sim] {
      sim.set_partitioned(0, 2, true);
      sim.set_partitioned(1, 2, true);
    });
    sim.call_at(150 * kMillisecond, [&sim] {
      sim.set_partitioned(0, 2, false);
      sim.set_partitioned(1, 2, false);
    });
    sim.run_until(10 * kSecond);
    for (const NodeId id : clients)
      sim.endpoint_as<verify::RecordingClient>(id).flush_pending();
    EXPECT_GE(history.size(), 160u);  // everyone finished
    const auto result = verify::check_counter_linearizable(history);
    EXPECT_TRUE(result.linearizable)
        << "seed " << seed << ": " << result.explanation;
  }
}

// ---- eventual liveness (Sect. 3.5) ----

TEST(ProtocolLiveness, QueriesTerminateOnceUpdatesStop) {
  // "If a finite number of updates are submitted and proposer p receives a
  // query, then p will eventually learn some state." Updates stop at 50 ms;
  // every read issued afterwards must complete.
  sim::Simulator sim(77);
  const std::vector<NodeId> replica_ids{0, 1, 2};
  for (std::size_t i = 0; i < 3; ++i) {
    sim.add_node([&replica_ids](net::Context& ctx) {
      return std::make_unique<CounterReplica>(
          ctx, replica_ids, core::ProtocolConfig{}, core::gcounter_ops());
    });
  }
  verify::History writer_history;
  verify::History reader_history;
  // Writers hammer updates but stop (finite updates).
  for (std::size_t i = 0; i < 4; ++i) {
    sim.add_node([&, i](net::Context& ctx) {
      return std::make_unique<verify::RecordingClient>(
          ctx, replica_ids[i % 3], 0.0, 70 + i, &writer_history, 50);
    });
  }
  std::vector<NodeId> readers;
  for (std::size_t i = 0; i < 3; ++i) {
    readers.push_back(sim.add_node([&, i](net::Context& ctx) {
      return std::make_unique<verify::RecordingClient>(
          ctx, replica_ids[i], 1.0, 80 + i, &reader_history, 100);
    }));
  }
  sim.run_until(30 * kSecond);
  // All reader scripts completed: no starvation after quiescence.
  for (const NodeId id : readers)
    EXPECT_EQ(sim.endpoint_as<verify::RecordingClient>(id).completed(), 100u);
  EXPECT_EQ(reader_history.read_count(), 300u);
}

}  // namespace
}  // namespace lsr
