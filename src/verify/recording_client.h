// Closed-loop counter client that records every operation into a History
// for linearizability checking. Used by the correctness test-benches; the
// plain bench::CounterClient is used for performance runs (no recording
// overhead beyond the collector).
#pragma once

#include <cstdint>
#include <limits>

#include "common/rng.h"
#include "common/types.h"
#include "common/wire.h"
#include "net/context.h"
#include "rsm/client_msg.h"
#include "verify/history.h"

namespace lsr::verify {

class RecordingClient final : public net::Endpoint {
 public:
  // max_ops == 0: run until the simulation stops.
  RecordingClient(net::Context& ctx, NodeId replica, double read_ratio,
                  std::uint64_t seed, History* history,
                  std::uint64_t max_ops = 0)
      : ctx_(ctx),
        replica_(replica),
        read_ratio_(read_ratio),
        rng_(seed),
        history_(history),
        max_ops_(max_ops) {}

  void on_start() override { submit_next(); }

  void on_message(NodeId from, ByteSpan data) override {
    (void)from;
    Decoder dec(data);
    const std::uint8_t tag = dec.get_u8();
    if (tag == static_cast<std::uint8_t>(rsm::ClientTag::kUpdateDone)) {
      const auto done = rsm::UpdateDone::decode(dec);
      if (done.request != inflight_request_) return;
      history_->add_increment(inflight_start_, ctx_.now(), 1);
    } else if (tag == static_cast<std::uint8_t>(rsm::ClientTag::kQueryDone)) {
      const auto done = rsm::QueryDone::decode(dec);
      if (done.request != inflight_request_) return;
      Decoder result(done.result);
      history_->add_read(inflight_start_, ctx_.now(), result.get_u64());
    } else {
      return;
    }
    ++completed_;
    inflight_request_ = 0;
    if (max_ops_ == 0 || completed_ < max_ops_) submit_next();
  }

  std::uint64_t completed() const { return completed_; }

  // Call after the run: records a still-pending update as possibly-applied
  // (response = +inf), the standard treatment for crash histories — an
  // update whose ack was lost may nevertheless be visible to reads. Pending
  // reads are simply dropped (they constrain nothing).
  void flush_pending() {
    if (inflight_request_ == 0 || !inflight_is_update_) return;
    history_->add_increment(inflight_start_,
                            std::numeric_limits<TimeNs>::max(), 1);
    inflight_request_ = 0;
  }

 private:
  void submit_next() {
    const bool is_read = rng_.next_bool(read_ratio_);
    inflight_is_update_ = !is_read;
    inflight_start_ = ctx_.now();
    inflight_request_ = make_request_id(ctx_.self(), next_counter_++);
    Encoder enc;
    if (is_read) {
      rsm::ClientQuery query{inflight_request_, 0, {}};
      query.encode(enc);
    } else {
      Encoder args;
      args.put_u64(1);
      rsm::ClientUpdate update{inflight_request_, 0, std::move(args).take()};
      update.encode(enc);
    }
    ctx_.send(replica_, std::move(enc).take());
  }

  net::Context& ctx_;
  NodeId replica_;
  double read_ratio_;
  Rng rng_;
  History* history_;
  std::uint64_t max_ops_;
  RequestId inflight_request_ = 0;
  bool inflight_is_update_ = false;
  TimeNs inflight_start_ = 0;
  std::uint64_t next_counter_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace lsr::verify
