// Positive-negative counter: a pair of G-counters (increments, decrements).
// value = sum(p) - sum(n). Join and order are component-wise.
#pragma once

#include <cstdint>

#include "common/wire.h"
#include "lattice/gcounter.h"

namespace lsr::lattice {

class PNCounter {
 public:
  PNCounter() = default;
  explicit PNCounter(std::size_t replicas)
      : positive_(replicas), negative_(replicas) {}

  void increment(std::size_t replica, std::uint64_t amount = 1) {
    positive_.increment(replica, amount);
  }

  void decrement(std::size_t replica, std::uint64_t amount = 1) {
    negative_.increment(replica, amount);
  }

  std::int64_t value() const {
    return static_cast<std::int64_t>(positive_.value()) -
           static_cast<std::int64_t>(negative_.value());
  }

  void join(const PNCounter& other) {
    positive_.join(other.positive_);
    negative_.join(other.negative_);
  }

  bool leq(const PNCounter& other) const {
    return positive_.leq(other.positive_) && negative_.leq(other.negative_);
  }

  bool operator==(const PNCounter& other) const {
    return leq(other) && other.leq(*this);
  }

  void encode(Encoder& enc) const {
    positive_.encode(enc);
    negative_.encode(enc);
  }

  static PNCounter decode(Decoder& dec) {
    PNCounter counter;
    counter.positive_ = GCounter::decode(dec);
    counter.negative_ = GCounter::decode(dec);
    return counter;
  }

  std::size_t byte_size() const {
    return positive_.byte_size() + negative_.byte_size();
  }

 private:
  GCounter positive_;
  GCounter negative_;
};

}  // namespace lsr::lattice
