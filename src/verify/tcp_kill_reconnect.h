// The kill/reconnect acceptance scenario for the TCP transport, shared by
// tests/tcp_test.cpp and bench/scale_tcp.cpp so the CI smoke and the test
// suite can never silently diverge: a sharded KV store on three replicas
// over loopback TCP, recording clients against replicas 0 and 1 (the 2/3
// quorum stays live), replica 2 killed and reconnected mid-workload, then
// every key's merged history checked for linearizability.
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "core/ops.h"
#include "kv/sharded_store.h"
#include "lattice/gcounter.h"
#include "net/tcp.h"
#include "verify/history.h"
#include "verify/kv_recording_client.h"
#include "verify/linearizability.h"

namespace lsr::verify {

struct TcpKillReconnectOptions {
  std::size_t clients = 4;
  std::uint64_t ops_per_client = 80;
  int keys = 16;
  std::uint32_t shards = 4;
  std::uint64_t seed = 1;
  TimeNs kill_after = 50 * kMillisecond;    // wall-clock into the workload
  TimeNs downtime = 150 * kMillisecond;     // how long replica 2 stays dead
  int deadline_ms = 20000;                  // client-completion deadline
};

struct TcpKillReconnectResult {
  bool completed = false;     // every client finished its session
  bool linearizable = false;  // every key's merged history checked out
  std::size_t key_count = 0;
  std::size_t total_ops = 0;
  // Outgoing connects of replica 0 — nonzero proves real sockets were
  // dialed (and re-dialed after the kill).
  std::uint64_t replica0_connects = 0;
  std::string explanation;  // first linearizability violation, when any

  bool ok() const { return completed && linearizable; }
};

inline TcpKillReconnectResult run_tcp_kill_reconnect(
    const TcpKillReconnectOptions& options) {
  using Store = kv::ShardedStore<lattice::GCounter>;
  TcpKillReconnectResult result;
  // Everything the endpoints point into outlives the cluster (declared
  // first => destroyed last), so even an aborted run cannot tear the
  // keyspace or histories out from under still-running client threads.
  std::vector<std::string> keys;
  for (int k = 0; k < options.keys; ++k)
    keys.push_back("hot" + std::to_string(k));
  std::vector<std::unique_ptr<KeyedHistory>> histories;
  std::vector<NodeId> clients;
  net::TcpCluster cluster;
  const std::vector<NodeId> replica_ids{0, 1, 2};
  for (std::size_t i = 0; i < replica_ids.size(); ++i) {
    cluster.add_node([&](net::Context& ctx) {
      return std::make_unique<Store>(ctx, replica_ids, core::ProtocolConfig{},
                                     core::gcounter_ops(), lattice::GCounter{},
                                     kv::ShardOptions{options.shards});
    });
  }
  for (std::size_t c = 0; c < options.clients; ++c) {
    histories.push_back(std::make_unique<KeyedHistory>());
    clients.push_back(cluster.add_node([&, c](net::Context& ctx) {
      return std::make_unique<KvRecordingClient>(
          ctx, static_cast<NodeId>(c % 2), &keys, /*read_ratio=*/0.5,
          options.seed * 31 + c, histories[c].get(), options.ops_per_client);
    }));
  }
  cluster.start();
  std::this_thread::sleep_for(std::chrono::nanoseconds(options.kill_after));
  cluster.set_paused(2, true);
  std::this_thread::sleep_for(std::chrono::nanoseconds(options.downtime));
  cluster.set_paused(2, false);
  const auto all_done = [&] {
    for (const NodeId client : clients)
      if (cluster.endpoint_as<KvRecordingClient>(client).completed() <
          options.ops_per_client)
        return false;
    return true;
  };
  for (int waited = 0; waited < options.deadline_ms && !all_done();
       waited += 10)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  result.completed = all_done();
  cluster.stop();
  result.replica0_connects = cluster.connect_count(0);
  if (!result.completed) {
    result.explanation = "clients did not finish within the deadline";
    return result;
  }
  KeyedHistory merged;
  for (std::size_t c = 0; c < options.clients; ++c) {
    cluster.endpoint_as<KvRecordingClient>(clients[c]).flush_pending();
    merged.merge_from(*histories[c]);
  }
  result.key_count = merged.key_count();
  result.total_ops = merged.total_ops();
  result.linearizable = true;
  for (const auto& [key, history] : merged.histories()) {
    const auto check = check_counter_linearizable(history);
    if (!check.linearizable) {
      result.linearizable = false;
      if (result.explanation.empty())
        result.explanation = "key " + key + ": " + check.explanation;
    }
  }
  return result;
}

}  // namespace lsr::verify
