#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.h"

namespace lsr {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::bucket_index(std::int64_t value) {
  if (value < 0) value = 0;
  const auto v = static_cast<std::uint64_t>(value);
  if (v < kUnitBuckets) return static_cast<int>(v);
  // v in [2^high, 2^(high+1)); shifting by (high - 5) maps it to [32, 64).
  const int high = 63 - std::countl_zero(v);
  const int row = high - 5;  // row >= 1 because v >= 64
  const auto offset =
      static_cast<int>((v >> (high - 5)) - kSubBuckets);  // [0, 32)
  const int index = kUnitBuckets + (row - 1) * kSubBuckets + offset;
  return std::min(index, kNumBuckets - 1);
}

std::int64_t Histogram::bucket_upper(int index) {
  if (index < kUnitBuckets) return index;  // exact
  const int row = (index - kUnitBuckets) / kSubBuckets + 1;
  const int offset = (index - kUnitBuckets) % kSubBuckets;
  const int high = row + 5;
  const std::uint64_t lower = static_cast<std::uint64_t>(kSubBuckets + offset)
                              << (high - 5);
  const std::uint64_t width = std::uint64_t{1} << (high - 5);
  return static_cast<std::int64_t>(lower + width - 1);
}

std::int64_t Histogram::bucket_lower(int index) {
  if (index < kUnitBuckets) return index;  // exact
  const int row = (index - kUnitBuckets) / kSubBuckets + 1;
  const int offset = (index - kUnitBuckets) % kSubBuckets;
  const int high = row + 5;
  return static_cast<std::int64_t>(
      static_cast<std::uint64_t>(kSubBuckets + offset) << (high - 5));
}

void Histogram::record(std::int64_t value) { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::uint64_t n) {
  if (n == 0) return;
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
  buckets_[static_cast<std::size_t>(bucket_index(value))] += n;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
}

std::int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }
std::int64_t Histogram::max() const { return count_ == 0 ? 0 : max_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::int64_t Histogram::percentile(double quantile) const {
  if (count_ == 0) return 0;
  quantile = std::clamp(quantile, 0.0, 1.0);
  // Nearest rank in [1, count]: ceil(q * count). The epsilon keeps exact
  // quantiles from rounding up a whole rank when q * count lands a few ulps
  // above the integer (0.3 * 10 = 3.0000000000000004); the old
  // "+ 0.5 then truncate" rounding pushed boundary quantiles (e.g. the
  // median of an even count) one rank high instead.
  const double h = quantile * static_cast<double>(count_);
  const auto target = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::ceil(h - 1e-9)), 1, count_);
  std::uint64_t before = 0;  // entries in buckets preceding bucket i
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (before + buckets_[i] >= target) {
      // Rank `target` falls in this bucket: interpolate linearly by
      // intra-bucket rank instead of reporting the bucket's upper edge,
      // which inflated every quantile of sub-bucket-width distributions by
      // up to a full bucket width. Clamping into the observed range keeps
      // single-valued histograms exact.
      const std::int64_t lower = bucket_lower(static_cast<int>(i));
      const std::int64_t upper = bucket_upper(static_cast<int>(i));
      const double frac = static_cast<double>(target - before) /
                          static_cast<double>(buckets_[i]);
      const auto value = static_cast<std::int64_t>(
          static_cast<double>(lower) + frac * static_cast<double>(upper - lower));
      return std::clamp(value, min_, max_);
    }
    before += buckets_[i];
  }
  return max_;
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

}  // namespace lsr
