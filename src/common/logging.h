// Minimal leveled logger. Simulation hot paths use LSR_LOG_DEBUG which
// compiles to a branch on the global level; the default level is kWarn so
// benchmarks stay quiet.
#pragma once

#include <cstdio>
#include <string>

namespace lsr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const char* file, int line, const std::string& msg);
std::string format_message(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define LSR_LOG(level, ...)                                                   \
  do {                                                                        \
    if (static_cast<int>(level) >= static_cast<int>(::lsr::log_level()))      \
      ::lsr::detail::log_line(level, __FILE__, __LINE__,                      \
                              ::lsr::detail::format_message(__VA_ARGS__));    \
  } while (0)

#define LSR_LOG_DEBUG(...) LSR_LOG(::lsr::LogLevel::kDebug, __VA_ARGS__)
#define LSR_LOG_INFO(...) LSR_LOG(::lsr::LogLevel::kInfo, __VA_ARGS__)
#define LSR_LOG_WARN(...) LSR_LOG(::lsr::LogLevel::kWarn, __VA_ARGS__)
#define LSR_LOG_ERROR(...) LSR_LOG(::lsr::LogLevel::kError, __VA_ARGS__)

}  // namespace lsr
